"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper:

* ``pytest-benchmark`` timings cover the operations the figure plots
  (queries, index construction, updates), and
* the corresponding experiment runner is executed once per module and its
  rows are printed in the terminal summary (and written to
  ``benchmarks/results/``), so running ``pytest benchmarks/ --benchmark-only``
  reproduces the paper's tables and series in one go.

Scale knobs (environment variables):

``REPRO_BENCH_FULL=1``
    Run the full c-sweep (2..6) and all four Fig. 8/9 datasets instead of the
    reduced defaults.
``REPRO_BENCH_PAIRS``
    Number of OD pairs per workload (default 30).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

from repro import __version__
from repro.datasets import generate_queries, get_spec, load_dataset
from repro.experiments import format_table
from repro.experiments.runner import _built  # shared build cache

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Collected report blocks, printed in the terminal summary.
REPORTS: dict[str, str] = {}

FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "30"))
NUM_INTERVALS = 4
#: Departure timestamps per OD pair for the batch-query benchmarks (the
#: paper's workload uses 10 timestamps per pair).
BATCH_INTERVALS = 10
PROFILE_PAIRS = 6

#: Datasets and c values used by the sweep figures.
FIG8_DATASETS = ("CAL", "SF", "COL", "FLA") if FULL_SWEEP else ("CAL", "SF")
FIG9_DATASETS = ("SF", "COL", "FLA") if FULL_SWEEP else ("SF",)
C_VALUES = (2, 3, 4, 5, 6) if FULL_SWEEP else (2, 3, 5)


def _git_sha() -> str:
    """Short commit hash of the working tree, or ``"unknown"`` outside git."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except Exception:  # noqa: BLE001 - history is best-effort metadata
        return "unknown"
    return probe.stdout.strip() or "unknown"


#: Row keys worth tracking across commits (throughput and tail latency).
_HEADLINE_MARKERS = ("qps", "p99", "speedup")


def _headline(rows: list[dict]) -> dict:
    """The throughput/tail-latency numbers of a report, one flat dict.

    Multi-row reports (one row per method/strategy/replica count) prefix
    each key with the row's label so the history line stays unambiguous.
    """
    numbers: dict = {}
    for i, row in enumerate(rows):
        label = (
            row.get("method")
            or row.get("strategy")
            or (f"replicas={row['replicas']}" if "replicas" in row else None)
            or (str(i) if len(rows) > 1 else None)
        )
        for key, value in row.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if any(marker in key for marker in _HEADLINE_MARKERS):
                numbers[f"{label}.{key}" if label else key] = value
    return numbers


def append_history(name: str, rows: list[dict]) -> None:
    """Append one report's headline numbers to ``results/BENCH_history.jsonl``.

    One JSON line per registered report per run — git sha, timestamp, and
    every qps/p99/speedup figure the rows carry — so the perf trajectory of
    any benchmark can be plotted straight off the artifact without diffing
    whole ``BENCH_*.json`` files across commits.
    """
    headline = _headline(rows)
    if not headline:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    line = {
        "name": name,
        "git_sha": _git_sha(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "headline": headline,
    }
    with (RESULTS_DIR / "BENCH_history.jsonl").open("a", encoding="utf-8") as sink:
        sink.write(json.dumps(line, sort_keys=True, default=float) + "\n")


def register_report(name: str, rows: list[dict], *, title: str) -> None:
    """Store a formatted table so it is printed at the end of the run.

    Next to the human-readable ``results/<name>.txt`` a machine-readable
    ``results/BENCH_<name>.json`` is written with the raw rows, so the perf
    trajectory (speedups, throughput, latencies) is diffable across PRs and
    can be collected as a CI artifact.  Headline numbers additionally append
    to ``results/BENCH_history.jsonl`` (see :func:`append_history`).
    """
    text = format_table(rows, title=title)
    REPORTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "name": name,
        "title": title,
        "repro_version": __version__,
        "python": platform.python_version(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n",
        encoding="utf-8",
    )
    append_history(name, rows)


def built_index(method: str, dataset: str, c: int, *, budget_fraction: float | None = None):
    """Build (or fetch from the shared cache) one index configuration."""
    if budget_fraction is None and method in ("TD-dp", "TD-appro"):
        budget_fraction = get_spec(dataset).default_budget_fraction
    return _built(method, dataset, c, budget_fraction=budget_fraction)


def workload_for(
    dataset: str,
    c: int,
    *,
    num_pairs: int | None = None,
    num_intervals: int | None = None,
):
    """Deterministic query workload over the scaled dataset."""
    graph = load_dataset(dataset, num_points=c)
    return generate_queries(
        graph,
        num_pairs=num_pairs or NUM_PAIRS,
        num_intervals=num_intervals or NUM_INTERVALS,
        seed=get_spec(dataset).seed + c,
        dataset=dataset,
    )
