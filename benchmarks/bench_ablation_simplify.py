"""Ablation — the PLF simplification cap (exactness vs size vs speed).

The reproduction caps the number of interpolation points per stored function
(``max_points``) to keep pure-Python index construction tractable; the paper's
C++ implementation stores exact functions.  This ablation quantifies what the
cap costs in answer accuracy and what it buys in memory and construction
time, so the substitution documented in DESIGN.md is backed by numbers.
"""

from __future__ import annotations

from repro.experiments import run_simplification_ablation

from harness import FULL_SWEEP, register_report

DATASET = "CAL"
CAPS = (8, 16, 32, None) if FULL_SWEEP else (8, 16, None)


def test_report_simplification_ablation(benchmark):
    """Run the simplification-cap ablation and register its table."""
    rows = benchmark.pedantic(
        lambda: run_simplification_ablation(
            dataset=DATASET,
            max_points_values=CAPS,
            num_pairs=20,
            num_intervals=3,
            accuracy_pairs=10,
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "ablation_simplify",
        rows,
        title="Ablation: PLF simplification cap vs accuracy, memory and build time",
    )
    by_cap = {row["max_points"]: row for row in rows}
    exact = by_cap["exact"]
    tightest = by_cap[min(c for c in by_cap if c != "exact")]
    # Exact mode has zero error; capped modes trade a small, bounded error for
    # a smaller index.
    assert exact["max_relative_error"] <= 1e-9
    assert tightest["max_relative_error"] <= 0.05
    assert tightest["memory_mb"] <= exact["memory_mb"]
