"""Table 4 — the same method comparison on the largest dataset (W-USA, c = 2).

The paper reports TD-H2H as N/A here because its index does not fit in
memory; the reproduction mirrors that by skipping TD-H2H unless the full
sweep is requested.  Benchmarked operation: scalar travel-cost query per
method on the scaled W-USA network.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_table4

from harness import FULL_SWEEP, built_index, register_report, workload_for

DATASET = "W-USA"
C = 2
METHODS = ("TD-G-tree", "TD-basic") + (("TD-H2H",) if FULL_SWEEP else ())


@pytest.mark.parametrize("method", METHODS)
def test_cost_query_on_largest_dataset(benchmark, method):
    """Benchmark: scalar query latency on the scaled Western-USA network."""
    build = built_index(method, DATASET, C)
    workload = list(workload_for(DATASET, C, num_pairs=20))
    state = {"i": 0}

    def run_one():
        query = workload[state["i"] % len(workload)]
        state["i"] += 1
        return build.index.query(query.source, query.target, query.departure)

    result = benchmark(run_one)
    benchmark.extra_info["method"] = method
    benchmark.extra_info["construction_s"] = round(build.build_seconds, 2)
    benchmark.extra_info["memory_mb"] = round(build.memory_mb, 2)
    assert result.cost >= 0


def test_report_table4(benchmark):
    """Generate and register the Table 4 report (TD-H2H marked N/A)."""
    rows = benchmark.pedantic(
        lambda: run_table4(num_pairs=20, num_intervals=3, profile_pairs=3),
        rounds=1,
        iterations=1,
    )
    register_report(
        "table4_wusa",
        rows,
        title="Table 4: performance on W-USA (c=2); TD-H2H skipped as in the paper",
    )
    by_method = {row["method"]: row for row in rows}
    assert by_method["TD-H2H"]["cost_query_ms"] == "N/A"
    assert by_method["TD-basic"]["memory_mb"] != "N/A"
