"""Index-construction benchmarks: scalar vs round-batched elimination.

Two acceptance targets are *enforced* here (not just reported):

* the round-batched elimination engine (``decompose(use_batch_kernels=True)``)
  must be at least **3x** faster than the scalar reference path on the scaled
  CAL dataset at the top of the default c-sweep (richer weight functions —
  the regime the Fig. 9 construction experiment scales into), and
* indexes built through either engine must answer **bit-identical** query
  costs for all four build strategies.

The registered report covers the whole per-phase picture: decomposition
(split into round assembly vs batch kernels), shortcut candidates and
selection, for both engines across the c-sweep.  The harness writes
``results/build.txt / results/build_phases.txt`` plus the machine-readable
``results/BENCH_build.json`` twin that CI uploads with the other artifacts.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.core import decompose
from repro.datasets import load_dataset

from harness import C_VALUES, register_report, workload_for

DATASET = "CAL"
#: c value the speedup floor is enforced at: the largest of the default sweep,
#: where per-function work is richest and the scalar dispatch overhead is the
#: clearest bottleneck (smaller c values are reported but not enforced).
ENFORCED_C = max(C_VALUES)
DECOMPOSE_SPEEDUP_TARGET = 3.0

STRATEGIES = ("basic", "dp", "approx", "full")


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_decomposition_scalar_vs_batched():
    """Construction acceptance: round-batched decomposition >= 3x scalar."""
    rows = []
    for c in C_VALUES:
        graph = load_dataset(DATASET, num_points=c)
        scalar_seconds, scalar_tree = _best_of(
            lambda: decompose(graph, use_batch_kernels=False)
        )
        batched_seconds, batched_tree = _best_of(
            lambda: decompose(graph, use_batch_kernels=True)
        )
        stats = batched_tree.elimination_stats
        assert scalar_tree.treewidth == batched_tree.treewidth
        assert scalar_tree.treeheight == batched_tree.treeheight
        rows.append(
            {
                "dataset": DATASET,
                "c": c,
                "scalar_s": scalar_seconds,
                "batched_s": batched_seconds,
                "speedup": scalar_seconds / batched_seconds,
                "rounds": stats.num_rounds,
                "largest_round": stats.largest_round,
                "fill_edges": stats.num_fill_edges,
                "assembly_s": stats.assembly_seconds,
                "kernel_s": stats.kernel_seconds,
            }
        )
    register_report(
        "build",
        rows,
        title=(
            f"TFP decomposition: scalar vs round-batched elimination on "
            f"{DATASET} (best of 3)"
        ),
    )
    enforced = next(row for row in rows if row["c"] == ENFORCED_C)
    assert enforced["speedup"] >= DECOMPOSE_SPEEDUP_TARGET, (
        f"c={ENFORCED_C}: round-batched decomposition only "
        f"{enforced['speedup']:.2f}x faster than scalar "
        f"(target {DECOMPOSE_SPEEDUP_TARGET:.0f}x)"
    )


def test_build_phases_report():
    """Per-phase build timings (decomposition / candidates / selection)."""
    rows = []
    for use_batch in (False, True):
        graph = load_dataset(DATASET, num_points=ENFORCED_C)
        index = TDTreeIndex.build(
            graph, strategy="approx", use_batch_kernels=use_batch
        )
        seconds = index.statistics().phase_seconds
        rows.append(
            {
                "dataset": DATASET,
                "c": ENFORCED_C,
                "engine": "batched" if use_batch else "scalar",
                "decomposition_s": seconds.get("decomposition", 0.0),
                "assembly_s": seconds.get("decomposition/assembly", 0.0),
                "kernels_s": seconds.get("decomposition/kernels", 0.0),
                "candidates_s": seconds.get("shortcut_candidates", 0.0),
                "selection_s": seconds.get("selection", 0.0),
                "total_s": index.statistics().total_build_seconds,
            }
        )
    register_report(
        "build_phases",
        rows,
        title=f"Index build phases on {DATASET} (c={ENFORCED_C}, TD-appro)",
    )
    scalar_row = rows[0]
    batched_row = rows[1]
    assert batched_row["decomposition_s"] < scalar_row["decomposition_s"]


def test_build_strategies_bit_identical_costs():
    """Indexes built through either engine answer identical query costs."""
    graph = load_dataset(DATASET, num_points=3)
    queries = list(workload_for(DATASET, 3))
    sources = np.array([q.source for q in queries], dtype=np.int64)
    targets = np.array([q.target for q in queries], dtype=np.int64)
    departures = np.array([q.departure for q in queries], dtype=np.float64)
    for strategy in STRATEGIES:
        scalar_index = TDTreeIndex.build(
            graph.copy(), strategy=strategy, use_batch_kernels=False
        )
        batched_index = TDTreeIndex.build(
            graph.copy(), strategy=strategy, use_batch_kernels=True
        )
        assert np.array_equal(
            scalar_index.batch_query(sources, targets, departures).costs,
            batched_index.batch_query(sources, targets, departures).costs,
        ), f"{strategy}: query costs differ between the build engines"


@pytest.mark.parametrize("engine", ["scalar", "batched"])
def test_decompose_benchmark(benchmark, engine):
    """pytest-benchmark timing of one decomposition (tracked across PRs)."""
    graph = load_dataset(DATASET, num_points=3)
    tree = benchmark.pedantic(
        lambda: decompose(graph, use_batch_kernels=engine == "batched"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({"dataset": DATASET, "c": 3, "engine": engine})
    assert tree.num_nodes == graph.num_vertices
