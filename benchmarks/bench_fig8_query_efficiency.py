"""Fig. 8 — query efficiency vs the number of interpolation points ``c``.

Eight panels in the paper: travel-cost query time and cost-function query time
on CAL, SF, COL and FLA, sweeping c from 2 to 6.  The benchmarked operations
are the two query types per (dataset, method, c) combination; the registered
report prints the same series the figure plots.

The module also benchmarks the **batch query engine**
(:meth:`TDTreeIndex.batch_query`): the same scalar workload submitted as one
vectorized call instead of a per-query Python loop.  The batch workload uses
the paper's 10 departure timestamps per OD pair (the loop/batch comparison is
run on identical queries and asserts bit-identical costs).

By default a reduced sweep (CAL + SF, c in {2, 3, 5}) is run; set
``REPRO_BENCH_FULL=1`` for the paper's full grid.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments import engine_supports, run_fig8

from harness import (
    BATCH_INTERVALS,
    C_VALUES,
    FIG8_DATASETS,
    NUM_PAIRS,
    PROFILE_PAIRS,
    built_index,
    register_report,
    workload_for,
)


def _methods_for(dataset: str) -> tuple[str, ...]:
    # Panels (a)-(b) of the paper compare the baselines on CAL; the other
    # panels compare TD-G-tree with the two shortcut-selected indexes.
    if dataset == "CAL":
        return ("TD-G-tree", "TD-basic", "TD-H2H")
    return ("TD-G-tree", "TD-appro", "TD-dp")


CONFIGS = [
    (dataset, method, c)
    for dataset in FIG8_DATASETS
    for c in C_VALUES
    for method in _methods_for(dataset)
]


@pytest.mark.parametrize("dataset,method,c", CONFIGS)
def test_cost_query_vs_c(benchmark, dataset, method, c):
    """Benchmark: travel-cost query latency for one (dataset, method, c) cell."""
    build = built_index(method, dataset, c)
    workload = list(workload_for(dataset, c))
    state = {"i": 0}

    def run_one():
        query = workload[state["i"] % len(workload)]
        state["i"] += 1
        return build.index.query(query.source, query.target, query.departure)

    result = benchmark(run_one)
    benchmark.extra_info.update({"dataset": dataset, "method": method, "c": c})
    assert result.cost >= 0


def _workload_arrays(dataset: str, c: int, *, num_intervals: int):
    workload = workload_for(dataset, c, num_intervals=num_intervals)
    queries = list(workload)
    return (
        np.array([q.source for q in queries], dtype=np.int64),
        np.array([q.target for q in queries], dtype=np.int64),
        np.array([q.departure for q in queries], dtype=np.float64),
    )


@pytest.mark.parametrize(
    "dataset,method,c",
    [cfg for cfg in CONFIGS if cfg[1] != "TD-G-tree" and cfg[2] == C_VALUES[0]],
)
def test_batch_cost_query_throughput(benchmark, dataset, method, c):
    """Benchmark: the whole scalar workload served by one batch_query call."""
    build = built_index(method, dataset, c)
    sources, targets, departures = _workload_arrays(
        dataset, c, num_intervals=BATCH_INTERVALS
    )
    build.index.batch_query(sources, targets, departures)  # warm label caches

    result = benchmark(lambda: build.index.batch_query(sources, targets, departures))
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "method": method,
            "c": c,
            "num_queries": int(sources.size),
        }
    )
    assert np.all(result.costs >= 0)


def test_report_batch_vs_loop_cal():
    """Batch engine acceptance: >= 3x throughput over the per-call loop on CAL.

    Runs the paper-style workload (NUM_PAIRS OD pairs x 10 departure
    timestamps) through both entry points for every CAL index method, asserts
    the costs are bit-identical, registers the speedup table, and enforces the
    3x target for the batch engine.
    """
    c = C_VALUES[0]
    sources, targets, departures = _workload_arrays(
        "CAL", c, num_intervals=BATCH_INTERVALS
    )
    rows = []
    for method in _methods_for("CAL"):
        build = built_index(method, "CAL", c)
        index = build.index
        if not engine_supports(index, "batch"):
            continue
        index.batch_query(sources, targets, departures)  # warm label caches
        loop_best = batch_best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            loop_costs = [
                index.query(int(s), int(t), float(d)).cost
                for s, t, d in zip(sources, targets, departures)
            ]
            loop_best = min(loop_best, time.perf_counter() - started)
            started = time.perf_counter()
            batch_result = index.batch_query(sources, targets, departures)
            batch_best = min(batch_best, time.perf_counter() - started)
        assert np.array_equal(np.asarray(loop_costs), batch_result.costs)
        rows.append(
            {
                "dataset": "CAL",
                "method": method,
                "c": c,
                "num_queries": int(sources.size),
                "loop_ms": loop_best * 1000.0,
                "batch_ms": batch_best * 1000.0,
                "speedup": loop_best / batch_best,
            }
        )
    register_report(
        "fig8_batch_speedup",
        rows,
        title=(
            "Batch query engine vs per-call loop on CAL "
            f"({NUM_PAIRS} pairs x {BATCH_INTERVALS} departures, best of 3)"
        ),
    )
    assert rows, "no CAL method exposes batch_query"
    for row in rows:
        assert row["speedup"] >= 3.0, (
            f"{row['method']}: batch speedup {row['speedup']:.2f}x below the 3x target"
        )


@pytest.mark.parametrize(
    "dataset,method,c",
    [cfg for cfg in CONFIGS if cfg[2] == C_VALUES[len(C_VALUES) // 2]],
)
def test_cost_function_query_mid_c(benchmark, dataset, method, c):
    """Benchmark: cost-function query latency at the middle c value.

    Profile queries are two to three orders of magnitude more expensive than
    scalar ones, so only one c value per (dataset, method) is micro-benchmarked
    here; the full c sweep for both query types is produced by the report.
    """
    build = built_index(method, dataset, c)
    pairs = workload_for(dataset, c).pairs()[:PROFILE_PAIRS]
    state = {"i": 0}

    def run_one():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return build.index.profile(source, target)

    benchmark.pedantic(run_one, rounds=max(2, PROFILE_PAIRS // 2), iterations=1)
    benchmark.extra_info.update({"dataset": dataset, "method": method, "c": c})


def test_report_fig8(benchmark):
    """Generate and register the Fig. 8 series (both query types, full c sweep)."""
    rows = benchmark.pedantic(
        lambda: run_fig8(
            datasets=FIG8_DATASETS,
            c_values=C_VALUES,
            num_pairs=NUM_PAIRS,
            num_intervals=4,
            profile_pairs=PROFILE_PAIRS,
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "fig8_query_efficiency",
        rows,
        title="Fig. 8: query time (ms) vs c — travel-cost and cost-function queries",
    )
    # Qualitative shape: the shortcut-based indexes beat TD-basic (CAL) and are
    # competitive with or faster than TD-G-tree on the cost-function queries.
    cal_rows = [r for r in rows if r["dataset"] == "CAL" and r["c"] == C_VALUES[0]]
    if cal_rows:
        by_method = {r["method"]: r for r in cal_rows}
        assert (
            by_method["TD-H2H"]["profile_query_ms"]
            < by_method["TD-basic"]["profile_query_ms"]
        )
