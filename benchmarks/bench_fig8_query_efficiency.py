"""Fig. 8 — query efficiency vs the number of interpolation points ``c``.

Eight panels in the paper: travel-cost query time and cost-function query time
on CAL, SF, COL and FLA, sweeping c from 2 to 6.  The benchmarked operations
are the two query types per (dataset, method, c) combination; the registered
report prints the same series the figure plots.

By default a reduced sweep (CAL + SF, c in {2, 3, 5}) is run; set
``REPRO_BENCH_FULL=1`` for the paper's full grid.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig8

from harness import (
    C_VALUES,
    FIG8_DATASETS,
    NUM_PAIRS,
    PROFILE_PAIRS,
    built_index,
    register_report,
    workload_for,
)


def _methods_for(dataset: str) -> tuple[str, ...]:
    # Panels (a)-(b) of the paper compare the baselines on CAL; the other
    # panels compare TD-G-tree with the two shortcut-selected indexes.
    if dataset == "CAL":
        return ("TD-G-tree", "TD-basic", "TD-H2H")
    return ("TD-G-tree", "TD-appro", "TD-dp")


CONFIGS = [
    (dataset, method, c)
    for dataset in FIG8_DATASETS
    for c in C_VALUES
    for method in _methods_for(dataset)
]


@pytest.mark.parametrize("dataset,method,c", CONFIGS)
def test_cost_query_vs_c(benchmark, dataset, method, c):
    """Benchmark: travel-cost query latency for one (dataset, method, c) cell."""
    build = built_index(method, dataset, c)
    workload = list(workload_for(dataset, c))
    state = {"i": 0}

    def run_one():
        query = workload[state["i"] % len(workload)]
        state["i"] += 1
        return build.index.query(query.source, query.target, query.departure)

    result = benchmark(run_one)
    benchmark.extra_info.update({"dataset": dataset, "method": method, "c": c})
    assert result.cost >= 0


@pytest.mark.parametrize(
    "dataset,method,c",
    [cfg for cfg in CONFIGS if cfg[2] == C_VALUES[len(C_VALUES) // 2]],
)
def test_cost_function_query_mid_c(benchmark, dataset, method, c):
    """Benchmark: cost-function query latency at the middle c value.

    Profile queries are two to three orders of magnitude more expensive than
    scalar ones, so only one c value per (dataset, method) is micro-benchmarked
    here; the full c sweep for both query types is produced by the report.
    """
    build = built_index(method, dataset, c)
    pairs = workload_for(dataset, c).pairs()[:PROFILE_PAIRS]
    state = {"i": 0}

    def run_one():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return build.index.profile(source, target)

    benchmark.pedantic(run_one, rounds=max(2, PROFILE_PAIRS // 2), iterations=1)
    benchmark.extra_info.update({"dataset": dataset, "method": method, "c": c})


def test_report_fig8(benchmark):
    """Generate and register the Fig. 8 series (both query types, full c sweep)."""
    rows = benchmark.pedantic(
        lambda: run_fig8(
            datasets=FIG8_DATASETS,
            c_values=C_VALUES,
            num_pairs=NUM_PAIRS,
            num_intervals=4,
            profile_pairs=PROFILE_PAIRS,
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "fig8_query_efficiency",
        rows,
        title="Fig. 8: query time (ms) vs c — travel-cost and cost-function queries",
    )
    # Qualitative shape: the shortcut-based indexes beat TD-basic (CAL) and are
    # competitive with or faster than TD-G-tree on the cost-function queries.
    cal_rows = [r for r in rows if r["dataset"] == "CAL" and r["c"] == C_VALUES[0]]
    if cal_rows:
        by_method = {r["method"]: r for r in cal_rows}
        assert (
            by_method["TD-H2H"]["profile_query_ms"]
            < by_method["TD-basic"]["profile_query_ms"]
        )
