"""Serving-layer benchmarks: snapshot load speed and QueryService throughput.

Three acceptance targets are *enforced* here (not just reported):

* loading a snapshot (``TDTreeIndex.load``) must be at least **5x** faster
  than rebuilding the index on the scaled CAL dataset, with bit-identical
  query costs, for all four build strategies (the floor was 10x against the
  scalar build path; the round-batched elimination engine made rebuilds
  ~2.5-3x cheaper, which shrinks the ratio without touching the load path);
* :class:`repro.serving.QueryService` must sustain at least **3x** the
  throughput of a per-call ``index.query`` loop on the Fig. 8 workload
  (NUM_PAIRS OD pairs x 10 departure timestamps);
* with ``--host``: the :class:`repro.serving.EngineHost` swap-under-load
  scenario — hammering threads across a hot swap see **zero** errors, no
  future is dropped, and every answer delivered after ``swap`` returns is
  bit-identical to the replacement engine's own scalar ``query``.  Swap
  latency and the zero-downtime counters land in
  ``results/BENCH_serving.json``;
* with ``--chaos``: the resilience-under-overload scenario — a bounded
  shed-policy service with deadlines takes **2x** its measured closed-loop
  capacity as open-loop load, through a fault-injected engine with periodic
  latency spikes.  Every offered query must end in exactly one typed
  outcome (answered, shed, or deadline-expired) with **zero** never-settled
  futures; the shed rate and p99 land in
  ``results/BENCH_serving_resilience.json``;
* with ``--obs``: the observability-overhead scenario — full telemetry
  (per-query traces, registry metrics, event log) must cost less than
  **3%** of the service's closed-loop capacity versus
  ``Observability.disabled()``.  The overhead split lands in
  ``results/BENCH_serving_obs.json``;
* with ``--replicas``: the multi-process replica scaling scenario — a
  :class:`repro.serving.ReplicaPool` of N workers rehydrating one CAL
  snapshot (``mmap_mode="r"``) takes the Fig. 8 workload closed-loop at
  each replica count in ``REPRO_BENCH_REPLICAS`` (default ``1,4``).
  Enforced always: zero dropped batches and answers bit-identical to the
  scalar oracle.  Enforced when the machine has at least as many cores as
  replicas: **2.5x** the single-replica throughput at 4 replicas (1.3x at
  2-3, for small CI runners); on smaller machines the run records
  ``cpu_limited`` instead of pretending.  The qps-vs-replicas table lands
  in ``results/BENCH_serving_replicas.json``.

The tables are registered with the harness, which writes
``results/<name>.txt`` plus machine-readable ``results/BENCH_<name>.json``
twins.
"""

from __future__ import annotations

import gc
import threading
import time

import numpy as np
import pytest

from repro import PiecewiseLinearFunction, TDTreeIndex, create_engine
from repro.datasets import load_dataset
from repro.serving import EngineHost, QueryService

from harness import (
    BATCH_INTERVALS,
    NUM_PAIRS,
    register_report,
    workload_for,
)

DATASET = "CAL"
C = 3

STRATEGIES = ("basic", "dp", "approx", "full")
#: Fig. 8 CAL methods that expose the index API (TD-G-tree has no service).
SERVICE_METHODS = {"TD-basic": "basic", "TD-H2H": "full"}

LOAD_SPEEDUP_TARGET = 5.0
SERVICE_SPEEDUP_TARGET = 3.0
OBS_OVERHEAD_LIMIT_PCT = 3.0
#: Closed-loop throughput floor for 4+ replicas vs 1 (cores permitting).
REPLICA_SPEEDUP_TARGET = 2.5
#: Floor for 2-3 replicas (small CI runners).
REPLICA_SPEEDUP_TARGET_SMALL = 1.3


def _workload_arrays():
    queries = list(workload_for(DATASET, C, num_intervals=BATCH_INTERVALS))
    return (
        np.array([q.source for q in queries], dtype=np.int64),
        np.array([q.target for q in queries], dtype=np.int64),
        np.array([q.departure for q in queries], dtype=np.float64),
    )


def test_snapshot_load_vs_rebuild(tmp_path):
    """Snapshot acceptance: bit-identical costs, load >= 5x faster than build."""
    graph = load_dataset(DATASET, num_points=C)
    sources, targets, departures = _workload_arrays()
    rows = []
    for strategy in STRATEGIES:
        started = time.perf_counter()
        index = TDTreeIndex.build(graph.copy(), strategy=strategy)
        build_seconds = time.perf_counter() - started
        expected = index.batch_query(sources, targets, departures).costs

        directory = index.save(tmp_path / f"{DATASET}-{strategy}.index")
        load_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            loaded = TDTreeIndex.load(directory)
            load_seconds = min(load_seconds, time.perf_counter() - started)
        actual = loaded.batch_query(sources, targets, departures).costs
        assert np.array_equal(expected, actual), (
            f"{strategy}: loaded index costs differ from the built index"
        )
        rows.append(
            {
                "dataset": DATASET,
                "strategy": strategy,
                "c": C,
                "build_s": build_seconds,
                "load_s": load_seconds,
                "speedup": build_seconds / load_seconds,
            }
        )
    register_report(
        "serving_snapshot_load",
        rows,
        title=f"Index snapshot: load vs rebuild on {DATASET} (best of 3 loads)",
    )
    for row in rows:
        assert row["speedup"] >= LOAD_SPEEDUP_TARGET, (
            f"{row['strategy']}: load only {row['speedup']:.1f}x faster than "
            f"rebuild (target {LOAD_SPEEDUP_TARGET:.0f}x)"
        )


def test_service_throughput_vs_loop():
    """Serving acceptance: QueryService >= 3x a per-call query loop on Fig. 8."""
    from harness import built_index

    sources, targets, departures = _workload_arrays()
    queries = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))
    rows = []
    from repro.obs import Observability

    for method, strategy in SERVICE_METHODS.items():
        index = built_index(method, DATASET, C).index
        index.batch_query(sources, targets, departures)  # warm label caches

        # The 3x gate sits within this machine class's run-to-run noise
        # (short cycles swing ~±10%), so the rounds are interleaved in ABBA
        # order — loop, service, service, loop, ... — so a slow stretch of
        # wall time inflates both minima instead of just one side of the
        # ratio, while each side's best round can still follow a round of
        # its own kind (strict alternation would hand the loop's cache
        # pollution to every service round, and vice versa).  GC is held off
        # during the timed regions, and a below-target reading is re-measured
        # up to three times before it counts as a failure — the same noise
        # policy as the --obs overhead gate.
        for attempt in range(3):
            loop_best = float("inf")
            service_best = float("inf")
            stats = None
            # Batch size sized to the workload burst: the basic strategy's
            # tree sweep has a per-batch fixed cost, so needlessly splitting a
            # burst into several flushes wastes it.  max_wait still bounds
            # tail latency for trickling traffic; the cache is off to measure
            # pure batching.  Telemetry is off to keep this the same quantity
            # the target was set against: batching vs a per-call loop
            # (neither side instrumented).  What telemetry costs has its own
            # gate — the --obs scenario below.
            with QueryService(
                index, max_batch_size=512, max_wait_ms=100.0, cache_size=0,
                obs=Observability.disabled(),
            ) as service:
                def _loop_round():
                    nonlocal loop_best
                    started = time.perf_counter()
                    costs = [index.query(s, t, d).cost for s, t, d in queries]
                    loop_best = min(loop_best, time.perf_counter() - started)
                    return costs

                def _service_round():
                    nonlocal service_best
                    started = time.perf_counter()
                    futures = [service.submit(s, t, d) for s, t, d in queries]
                    service.flush()
                    costs = [f.result(timeout=30) for f in futures]
                    service_best = min(
                        service_best, time.perf_counter() - started
                    )
                    return costs

                gc.collect()
                gc.disable()
                try:
                    for pair in range(4):
                        if pair % 2 == 0:
                            loop_costs = _loop_round()
                            served = _service_round()
                        else:
                            served = _service_round()
                            loop_costs = _loop_round()
                finally:
                    gc.enable()
                stats = service.stats()
            assert served == loop_costs, (
                f"{method}: service costs differ from the loop"
            )
            if loop_best / service_best >= SERVICE_SPEEDUP_TARGET:
                break

        num = len(queries)
        rows.append(
            {
                "dataset": DATASET,
                "method": method,
                "c": C,
                "num_queries": num,
                "loop_qps": num / loop_best,
                "service_qps": num / service_best,
                "speedup": loop_best / service_best,
                "attempts": attempt + 1,
                "batch_occupancy": stats.batch_occupancy,
                "p50_latency_ms": stats.p50_latency_ms,
                "p95_latency_ms": stats.p95_latency_ms,
            }
        )
    register_report(
        "serving_throughput",
        rows,
        title=(
            f"QueryService vs per-call loop on {DATASET} "
            f"({NUM_PAIRS} pairs x {BATCH_INTERVALS} departures, best of 3)"
        ),
    )
    for row in rows:
        assert row["speedup"] >= SERVICE_SPEEDUP_TARGET, (
            f"{row['method']}: service speedup {row['speedup']:.2f}x below the "
            f"{SERVICE_SPEEDUP_TARGET:.0f}x target"
        )


def test_host_swap_under_load(request):
    """``--host`` acceptance: a hot swap under hammering threads drops nothing.

    Four threads hammer one deployment while the main thread swaps it from a
    CAL index to one built on a clone with every profile slowed 1.5x (so old
    and new answers are distinguishable).  Enforced: zero submitter errors,
    every future resolved, and all answers delivered after ``swap`` returned
    bit-identical to the replacement engine's scalar ``query``.  The row
    written to ``results/BENCH_serving.json`` carries the swap latency split
    and the zero-downtime counters.
    """
    if not request.config.getoption("--host"):
        pytest.skip("pass --host to run the EngineHost swap-under-load scenario")

    graph = load_dataset(DATASET, num_points=C)
    old_engine = create_engine("td-basic", graph)
    patched = graph.copy()
    for u, v, w in list(patched.edges()):
        patched.set_weight(
            u, v, PiecewiseLinearFunction(w.times, w.costs * 1.5, w.via, validate=False)
        )
    # validate=false: scaling a FIFO profile can push its steepest slope past
    # the validator's bound; the scenario needs distinguishable answers, not
    # a physically plausible incident.
    replacement = create_engine("td-basic?validate=false", patched)

    sources, targets, departures = _workload_arrays()
    workload = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))
    old_costs = {q: old_engine.query(*q).cost for q in workload}
    new_costs = {q: replacement.query(*q).cost for q in workload}

    host = EngineHost(max_batch_size=256, max_wait_ms=2.0, cache_size=0)
    host.deploy("prod", old_engine)
    stop = threading.Event()
    errors: list[BaseException] = []
    results: list[tuple[float, tuple, float]] = []
    lock = threading.Lock()

    def hammer() -> None:
        local: list[tuple[float, tuple, float]] = []
        while not stop.is_set():
            for q in workload:
                submitted = time.perf_counter()
                try:
                    local.append((submitted, q, host.query("prod", *q)))
                except BaseException as exc:  # noqa: BLE001 - counted below
                    with lock:
                        errors.append(exc)
                    stop.set()
                    return
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(0.4)  # build pressure against the old engine
    swap_started = time.perf_counter()
    report = host.swap("prod", replacement)
    swap_returned = time.perf_counter()
    time.sleep(0.4)  # keep hammering the replacement
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    # A thread still alive after the join timeout is blocked on a future
    # that never settled — the dropped-future failure mode this scenario
    # exists to detect.
    stuck_threads = [thread for thread in threads if thread.is_alive()]
    wall = time.perf_counter() - started
    if not stuck_threads:
        host.close()  # a stuck thread would make close() hang too

    before = [r for r in results if r[0] < swap_returned]
    after = [r for r in results if r[0] >= swap_returned]
    mismatches = sum(1 for _, q, cost in after if cost != new_costs[q])
    in_flight_wrong = sum(
        1 for _, q, cost in before if cost not in (old_costs[q], new_costs[q])
    )
    rows = [
        {
            "dataset": DATASET,
            "c": C,
            "threads": len(threads),
            "total_queries": len(results),
            "queries_during_swap": sum(
                1 for r in results if swap_started <= r[0] < swap_returned
            ),
            "errors": len(errors),
            "dropped_futures": len(stuck_threads),
            "post_swap_mismatches": mismatches,
            "swap_build_s": report.build_seconds,
            "swap_switch_s": report.switch_seconds,
            "swap_drain_s": report.drain_seconds,
            "drained_queries": report.drained_queries,
            "qps_under_swap": len(results) / wall,
        }
    ]
    register_report(
        "serving",
        rows,
        title=f"EngineHost swap-under-load on {DATASET} (c={C}, 4 hammer threads)",
    )
    assert not stuck_threads, "a hammer thread is blocked on an unresolved future"
    assert not errors, f"swap leaked an error to a submitter: {errors[:1]!r}"
    assert before and after, "load must straddle the swap"
    assert mismatches == 0, "post-swap answers must match the replacement engine"
    assert in_flight_wrong == 0, "in-flight answers must come from one of the engines"


def test_resilience_under_overload(request):
    """``--chaos`` acceptance: 2x-capacity open-loop load, zero stranded futures.

    Phase 1 measures the deployment's closed-loop capacity (submit the whole
    workload, flush, gather).  Phase 2 offers queries open-loop at twice
    that rate against a *bounded* shed-policy service with a default
    deadline, over an engine injecting a deterministic latency spike every
    25th batch.  Enforced: every offered query ends in exactly one typed
    outcome — answered, shed at admission, or deadline-expired — and no
    future is left unsettled.  The shed rate and the p99 of the answered
    queries land in ``results/BENCH_serving_resilience.json``.
    """
    if not request.config.getoption("--chaos"):
        pytest.skip("pass --chaos to run the resilience-under-overload scenario")

    from repro.exceptions import AdmissionRejectedError, DeadlineExceededError

    graph = load_dataset(DATASET, num_points=C)
    engine = create_engine(
        "faulty:td-basic?latency_every=25&latency_ms=20&seed=7", graph
    )
    sources, targets, departures = _workload_arrays()
    workload = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))

    # Phase 1: closed-loop capacity of the same engine behind a service.
    with QueryService(
        engine, max_batch_size=256, max_wait_ms=2.0, cache_size=0
    ) as service:
        started = time.perf_counter()
        futures = [service.submit(s, t, d) for s, t, d in workload]
        service.flush()
        for future in futures:
            future.result(timeout=60)
        capacity_qps = len(workload) / (time.perf_counter() - started)

    # Phase 2: open-loop load at 2x capacity against a bounded service.
    offered_qps = 2.0 * capacity_qps
    total = min(int(offered_qps), 4 * len(workload))  # ~1 s of offered load
    interval = 1.0 / offered_qps
    shed = 0
    futures = []
    with QueryService(
        engine,
        max_batch_size=256,
        max_wait_ms=2.0,
        cache_size=0,
        max_pending=256,
        admission_policy="shed",
        default_deadline_ms=200.0,
    ) as service:
        started = time.perf_counter()
        next_submit = started
        for i in range(total):
            now = time.perf_counter()
            if now < next_submit:
                time.sleep(next_submit - now)
            next_submit += interval
            s, t, d = workload[i % len(workload)]
            try:
                futures.append(service.submit(s, t, d))
            except AdmissionRejectedError:
                shed += 1
        offered_seconds = time.perf_counter() - started
        service.flush()

        answered = expired = never_settled = 0
        for future in futures:
            try:
                error = future.exception(timeout=30.0)
            except TimeoutError:
                never_settled += 1
                continue
            if error is None:
                answered += 1
            elif isinstance(error, DeadlineExceededError):
                expired += 1
            else:
                raise AssertionError(f"untyped chaos outcome: {error!r}")
        stats = service.stats()

    rows = [
        {
            "dataset": DATASET,
            "c": C,
            "capacity_qps": capacity_qps,
            "offered_qps": total / offered_seconds,
            "offered": total,
            "answered": answered,
            "shed": shed,
            "shed_rate": shed / total,
            "deadline_expired": expired,
            "never_settled": never_settled,
            "p99_latency_ms": stats.p99_latency_ms,
        }
    ]
    register_report(
        "serving_resilience",
        rows,
        title=(
            f"Resilience under 2x-capacity open-loop load on {DATASET} "
            f"(c={C}, shed policy, 200 ms deadline, latency faults)"
        ),
    )
    assert never_settled == 0, "every offered query must settle — none may hang"
    assert answered + expired + shed == total, "chaos outcomes must be exhaustive"
    assert answered > 0, "the overloaded service must still answer queries"


def test_observability_overhead(request):
    """``--obs`` acceptance: full telemetry costs < 3% of closed-loop capacity.

    Two services over the *same* TD-basic index run the Fig. 8 closed-loop
    cycle (submit a x4 workload, flush, gather): one with
    ``Observability.disabled()`` (no registry, no traces, no events) and one
    with a live bundle tracing *every* query and publishing batch metrics.
    The true telemetry cost (~0.7us/query against a ~45us/query engine) sits
    near the measurement noise floor of a shared machine, so the harness is
    built for statistical power rather than raw speed:

    - cycles are paired in an ABBA pattern (baseline-telemetry one round,
      telemetry-baseline the next) so machine drift cancels instead of
      always penalising whichever side runs second;
    - the collector is held off during timing (``gc.collect()`` between
      cycles, ``gc.disable()`` inside) so telemetry allocations don't get
      charged a GC pause lottery;
    - the enforced overhead is a 10%-trimmed mean of the per-pair ratios
      over many pairs, and a run that still lands over budget retries the
      whole measurement (bounded attempts) before failing — a perf gate at
      1.03x needs that; a correctness bug shows up as a *consistent* miss.

    Enforced: the telemetry side keeps at least 97% of the baseline
    capacity.  The split lands in ``results/BENCH_serving_obs.json``.
    """
    if not request.config.getoption("--obs"):
        pytest.skip("pass --obs to run the observability-overhead scenario")

    import gc

    from harness import built_index

    from repro.obs import Observability

    sources, targets, departures = _workload_arrays()
    base_queries = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))
    # x4 the Fig. 8 workload (~1200 queries/cycle) so each timed cycle is
    # long enough to amortize scheduler jitter.
    queries = base_queries * 4
    num = len(queries)
    index = built_index("TD-basic", DATASET, C).index
    index.batch_query(sources, targets, departures)  # warm engine caches

    def cycle(service):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            futures = [service.submit(s, t, d) for s, t, d in queries]
            service.flush()
            for future in futures:
                future.result(timeout=60)
            return time.perf_counter() - started
        finally:
            gc.enable()

    pairs = 40
    attempts = 3

    def measure():
        """One full ABBA measurement; returns (overhead_pct, report row)."""
        obs = Observability()
        baseline_times: list[float] = []
        telemetry_times: list[float] = []
        with QueryService(
            index, max_batch_size=512, max_wait_ms=100.0, cache_size=0,
            obs=Observability.disabled(),
        ) as baseline_service, QueryService(
            index, max_batch_size=512, max_wait_ms=100.0, cache_size=0, obs=obs
        ) as telemetry_service:
            cycle(baseline_service)  # untimed warm-up for both sides
            cycle(telemetry_service)
            for i in range(pairs):
                if i % 2 == 0:
                    baseline_times.append(cycle(baseline_service))
                    telemetry_times.append(cycle(telemetry_service))
                else:
                    telemetry_times.append(cycle(telemetry_service))
                    baseline_times.append(cycle(baseline_service))
        # Telemetry really ran: one complete trace per submitted query
        # (warm-up cycle included).
        assert obs.tracer.completed == (pairs + 1) * num
        ratios = sorted(t / b for b, t in zip(baseline_times, telemetry_times))
        trim = pairs // 10
        trimmed = ratios[trim : pairs - trim]
        overhead_pct = 100.0 * (sum(trimmed) / len(trimmed) - 1.0)
        baseline_s = sorted(baseline_times)[pairs // 2]
        row = {
            "dataset": DATASET,
            "method": "TD-basic",
            "c": C,
            "num_queries": num,
            "pairs": pairs,
            "baseline_qps": num / baseline_s,
            "telemetry_qps": num / (baseline_s * (1.0 + overhead_pct / 100.0)),
            "overhead_pct": overhead_pct,
            "traces_recorded": obs.tracer.completed,
            "events_total": obs.events.total,
        }
        return overhead_pct, row

    for attempt in range(attempts):
        overhead_pct, row = measure()
        if overhead_pct < OBS_OVERHEAD_LIMIT_PCT:
            break
    row["attempts"] = attempt + 1
    register_report(
        "serving_obs",
        rows=[row],
        title=(
            f"Observability overhead on {DATASET} closed-loop capacity "
            f"(c={C}, every query traced, trimmed-mean ratio over {pairs} "
            f"ABBA pairs)"
        ),
    )
    assert overhead_pct < OBS_OVERHEAD_LIMIT_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% exceeds the "
        f"{OBS_OVERHEAD_LIMIT_PCT:.0f}% budget after {attempts} "
        f"measurement attempts"
    )


def test_replica_scaling(request, tmp_path):
    """``--replicas`` acceptance: N workers over one snapshot scale throughput.

    One CAL index is snapshotted once; for each replica count a fresh
    :class:`~repro.serving.ReplicaPool` rehydrates it (``mmap_mode="r"``,
    so the workers share one physical copy of the PLF buffers) and takes
    the x4 Fig. 8 workload closed-loop: ``2 x max(counts)`` submitter
    threads drain a chunk queue, each chunk one blocking ``batch_query``
    against the least-loaded replica.  Every chunk's costs land in a
    preallocated result array — a chunk that errors or never answers is a
    dropped batch and fails the run.

    Enforced always: zero dropped batches, and the full result array
    bit-identical to the scalar oracle (``index.query`` per workload
    entry).  Enforced when the machine has at least as many cores as the
    largest replica count: the throughput floor
    (:data:`REPLICA_SPEEDUP_TARGET` at 4+, the small-runner floor at 2-3).
    On machines with fewer cores than replicas the row records
    ``cpu_limited`` and the floor is *reported*, not enforced — process
    parallelism cannot beat the scheduler.
    """
    if not request.config.getoption("--replicas"):
        pytest.skip("pass --replicas to run the multi-process replica scaling scenario")

    import os
    import queue as queue_mod

    from repro.serving import ReplicaPool

    counts = sorted(
        {int(part) for part in os.environ.get("REPRO_BENCH_REPLICAS", "1,4").split(",")}
    )
    if 1 not in counts:
        counts.insert(0, 1)  # the scaling ratio needs the single-replica base
    cores = os.cpu_count() or 1

    graph = load_dataset(DATASET, num_points=C)
    index = TDTreeIndex.build(graph, strategy="basic")
    sources, targets, departures = _workload_arrays()
    oracle = np.array(
        [
            index.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ],
        dtype=np.float64,
    )
    repeat = 4  # x4 the Fig. 8 workload so each timed pass amortizes jitter
    all_sources = np.tile(sources, repeat)
    all_targets = np.tile(targets, repeat)
    all_departures = np.tile(departures, repeat)
    expected = np.tile(oracle, repeat)
    total = int(all_sources.size)
    chunk_size = 50
    chunks = [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]
    submitters = 2 * max(counts)

    def run_pass(pool: ReplicaPool) -> tuple[float, np.ndarray, list[BaseException]]:
        """One closed-loop pass; returns (wall seconds, costs, errors)."""
        costs = np.full(total, np.nan, dtype=np.float64)
        work: "queue_mod.SimpleQueue" = queue_mod.SimpleQueue()
        for bounds in chunks:
            work.put(bounds)
        errors: list[BaseException] = []
        error_lock = threading.Lock()

        def submit() -> None:
            while True:
                try:
                    start, stop = work.get_nowait()
                except queue_mod.Empty:
                    return
                try:
                    answer = pool.batch_query(
                        all_sources[start:stop],
                        all_targets[start:stop],
                        all_departures[start:stop],
                    )
                except BaseException as exc:  # noqa: BLE001 - counted below
                    with error_lock:
                        errors.append(exc)
                    return
                costs[start:stop] = answer.costs

        threads = [threading.Thread(target=submit) for _ in range(submitters)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        wall = time.perf_counter() - started
        if any(thread.is_alive() for thread in threads):
            errors.append(RuntimeError("a submitter thread never finished"))
        return wall, costs, errors

    rows = []
    qps_by_count: dict[int, float] = {}
    snapshot = index.save(tmp_path / "replica-bench.index")
    for count in counts:
        with ReplicaPool(
            snapshot, count, mmap_mode="r", name=f"bench-{count}"
        ) as pool:
            run_pass(pool)  # untimed warm-up: page cache + worker label caches
            best_wall = float("inf")
            for _ in range(2):
                wall, costs, errors = run_pass(pool)
                assert not errors, (
                    f"{count} replicas: dropped batches — {errors[:1]!r}"
                )
                assert np.array_equal(costs, expected), (
                    f"{count} replicas: answers differ from the scalar oracle"
                )
                best_wall = min(best_wall, wall)
            merged = pool.merged_stats()
        qps = total / best_wall
        qps_by_count[count] = qps
        rows.append(
            {
                "dataset": DATASET,
                "c": C,
                "replicas": count,
                "submitters": submitters,
                "num_queries": total,
                "qps": qps,
                "speedup_vs_1": qps / qps_by_count[1],
                "p50_latency_ms": merged.p50_latency_ms,
                "p99_latency_ms": merged.p99_latency_ms,
                "dropped_batches": 0,
                "cpu_limited": cores < count,
            }
        )
    register_report(
        "serving_replicas",
        rows,
        title=(
            f"ReplicaPool closed-loop scaling on {DATASET} (c={C}, "
            f"{total} queries, {submitters} submitters, {cores} cores)"
        ),
    )
    top = max(counts)
    floor = (
        REPLICA_SPEEDUP_TARGET if top >= 4 else REPLICA_SPEEDUP_TARGET_SMALL
    )
    achieved = qps_by_count[top] / qps_by_count[1]
    if top > 1 and cores >= top:
        assert achieved >= floor, (
            f"{top} replicas reached only {achieved:.2f}x the single-replica "
            f"throughput (floor {floor:.1f}x on this {cores}-core machine)"
        )


@pytest.mark.parametrize("strategy", ["approx"])
def test_snapshot_load_benchmark(benchmark, tmp_path, strategy):
    """pytest-benchmark timing of one load (tracked across PRs)."""
    graph = load_dataset(DATASET, num_points=C)
    index = TDTreeIndex.build(graph, strategy=strategy)
    directory = index.save(tmp_path / "bench.index")
    loaded = benchmark(lambda: TDTreeIndex.load(directory))
    assert loaded.tree.num_nodes == index.tree.num_nodes


def test_service_submit_benchmark(benchmark):
    """pytest-benchmark timing of the submit->flush->gather cycle."""
    from harness import built_index

    index = built_index("TD-H2H", DATASET, C).index
    sources, targets, departures = _workload_arrays()
    queries = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))
    index.batch_query(sources, targets, departures)

    # cache_size=0: with the cache on, every round after the first would be
    # pure LRU hits and the benchmark would stop tracking the batching path.
    with QueryService(
        index, max_batch_size=512, max_wait_ms=100.0, cache_size=0
    ) as service:

        def cycle():
            futures = [service.submit(s, t, d) for s, t, d in queries]
            service.flush()
            return [f.result(timeout=30) for f in futures]

        costs = benchmark(cycle)
    assert len(costs) == len(queries)
