"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in exceptions.__all__:
            if name == "ReproError":
                continue
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError), name

    def test_value_error_compatibility(self):
        assert issubclass(exceptions.InvalidFunctionError, ValueError)
        assert issubclass(exceptions.GraphError, ValueError)
        assert issubclass(exceptions.SelectionError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(exceptions.VertexNotFoundError, KeyError)
        assert issubclass(exceptions.EdgeNotFoundError, KeyError)

    def test_vertex_not_found_carries_vertex(self):
        error = exceptions.VertexNotFoundError(42)
        assert error.vertex == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_disconnected_query_error_message(self):
        error = exceptions.DisconnectedQueryError(3, 9)
        assert "3" in str(error) and "9" in str(error)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.IndexNotBuiltError("not built")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DatasetError("unknown dataset")

    def test_admission_rejected_compatibility(self):
        error = exceptions.AdmissionRejectedError(128, "shed")
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, RuntimeError)
        assert error.max_pending == 128
        assert error.policy == "shed"
        assert "128" in str(error)

    def test_deadline_exceeded_is_a_timeout(self):
        # Callers treating deadlines as plain timeouts must keep working.
        error = exceptions.DeadlineExceededError(250.0)
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, TimeoutError)
        assert error.deadline_ms == 250.0
        assert "250" in str(error)
        bare = exceptions.DeadlineExceededError()
        assert bare.deadline_ms is None

    def test_worker_crashed_carries_deployment_and_cause(self):
        error = exceptions.WorkerCrashedError("prod", "flusher thread died")
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, RuntimeError)
        assert error.deployment == "prod"
        assert error.cause == "flusher thread died"
        assert "prod" in str(error) and "flusher thread died" in str(error)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.functions
        import repro.graph
        import repro.utils

        assert repro.core.TDTreeIndex is repro.TDTreeIndex
