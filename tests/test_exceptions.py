"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in exceptions.__all__:
            if name == "ReproError":
                continue
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError), name

    def test_value_error_compatibility(self):
        assert issubclass(exceptions.InvalidFunctionError, ValueError)
        assert issubclass(exceptions.GraphError, ValueError)
        assert issubclass(exceptions.SelectionError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(exceptions.VertexNotFoundError, KeyError)
        assert issubclass(exceptions.EdgeNotFoundError, KeyError)

    def test_vertex_not_found_carries_vertex(self):
        error = exceptions.VertexNotFoundError(42)
        assert error.vertex == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_disconnected_query_error_message(self):
        error = exceptions.DisconnectedQueryError(3, 9)
        assert "3" in str(error) and "9" in str(error)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.IndexNotBuiltError("not built")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DatasetError("unknown dataset")

    def test_admission_rejected_compatibility(self):
        error = exceptions.AdmissionRejectedError(128, "shed")
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, RuntimeError)
        assert error.max_pending == 128
        assert error.policy == "shed"
        assert "128" in str(error)

    def test_deadline_exceeded_is_a_timeout(self):
        # Callers treating deadlines as plain timeouts must keep working.
        error = exceptions.DeadlineExceededError(250.0)
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, TimeoutError)
        assert error.deadline_ms == 250.0
        assert "250" in str(error)
        bare = exceptions.DeadlineExceededError()
        assert bare.deadline_ms is None

    def test_worker_crashed_carries_deployment_and_cause(self):
        error = exceptions.WorkerCrashedError("prod", "flusher thread died")
        assert isinstance(error, exceptions.ReproError)
        assert isinstance(error, RuntimeError)
        assert error.deployment == "prod"
        assert error.cause == "flusher thread died"
        assert "prod" in str(error) and "flusher thread died" in str(error)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.functions
        import repro.graph
        import repro.utils

        assert repro.core.TDTreeIndex is repro.TDTreeIndex


class TestPickleRoundTrips:
    """Every typed error must survive a pickle round-trip with args intact.

    Replica workers (:mod:`repro.serving.replica`) ship engine errors to the
    parent over ``multiprocessing`` queues; the default ``Exception``
    reduction replays ``self.args`` — the *formatted message* — into
    ``__init__``, which either raises ``TypeError`` at unpickle time or
    silently corrupts the typed attributes.  The parameterized classes define
    ``__reduce__`` explicitly; this suite locks the contract for the whole
    hierarchy.
    """

    #: (instance, attributes that must survive) for every parameterized error.
    CASES = [
        (exceptions.VertexNotFoundError(42), {"vertex": 42}),
        (exceptions.EdgeNotFoundError(1, 2), {"source": 1, "target": 2}),
        (exceptions.DisconnectedQueryError(3, 9), {"source": 3, "target": 9}),
        (
            exceptions.UnknownEngineError("nope", ("td-basic", "td-appro")),
            {"name": "nope", "available": ("td-basic", "td-appro")},
        ),
        (
            exceptions.UnknownEngineOptionError("td-appro", "bogus", ("budget",)),
            {"engine": "td-appro", "option": "bogus", "accepted": ("budget",)},
        ),
        (exceptions.StaleRouteError("td-appro"), {"engine": "td-appro"}),
        (exceptions.ServiceClosedError("batch_query"), {"operation": "batch_query"}),
        (
            exceptions.AdmissionRejectedError(128, "shed"),
            {"max_pending": 128, "policy": "shed"},
        ),
        (exceptions.DeadlineExceededError(250.0), {"deadline_ms": 250.0}),
        (exceptions.DeadlineExceededError(), {"deadline_ms": None}),
        (
            exceptions.WorkerCrashedError("prod", "replica 2 exited with code -9"),
            {"deployment": "prod", "cause": "replica 2 exited with code -9"},
        ),
        (
            exceptions.UnknownDeploymentError("prod", ("staging",)),
            {"name": "prod", "available": ("staging",)},
        ),
        (exceptions.DuplicateDeploymentError("prod"), {"name": "prod"}),
        (
            exceptions.UnsupportedCapabilityError("td-dijkstra", "batch_query"),
            {"engine": "td-dijkstra", "capability": "batch_query"},
        ),
        (
            exceptions.NoTrafficControllerError("prod", ("staging",)),
            {"deployment": "prod", "available": ("staging",)},
        ),
    ]

    @pytest.mark.parametrize(
        "error, attrs", CASES, ids=[type(e).__name__ for e, _ in CASES]
    )
    def test_parameterized_errors_survive_pickle(self, error, attrs):
        import pickle

        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)
        for attr, expected in attrs.items():
            assert getattr(clone, attr) == expected, attr

    def test_every_parameterized_error_is_covered(self):
        """Any new __reduce__ must come with a round-trip case above."""
        covered = {type(e) for e, _ in self.CASES}
        for name in exceptions.__all__:
            cls = getattr(exceptions, name)
            if "__reduce__" in cls.__dict__:
                assert cls in covered, f"{name} lacks a pickle round-trip case"

    def test_message_only_errors_survive_pickle(self):
        import pickle

        for name in exceptions.__all__:
            cls = getattr(exceptions, name)
            if "__reduce__" in cls.__dict__ or cls.__init__ is not Exception.__init__:
                continue
            error = cls("something went wrong")
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error), name
            assert str(clone) == str(error), name

    def test_default_reduction_would_corrupt(self):
        """Documents *why* __reduce__ exists: args-replay breaks 2-arg inits."""
        import pickle

        error = exceptions.WorkerCrashedError("prod", "boom")
        # One formatted-message arg; replaying it into __init__(deployment,
        # cause) would raise TypeError without the explicit __reduce__.
        assert len(error.args) == 1
        clone = pickle.loads(pickle.dumps(error))
        assert clone.deployment == "prod" and clone.cause == "boom"
