"""Unit tests for the analytic memory model."""

from __future__ import annotations

import pytest

from repro.utils import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel


class TestMemoryModel:
    def test_functions_bytes_scale_with_points(self):
        model = MemoryModel()
        small = model.functions_bytes(10, 2)
        large = model.functions_bytes(100, 2)
        assert large > small
        assert large - small == 90 * model.bytes_per_point

    def test_nodes_bytes(self):
        model = MemoryModel(bytes_per_node=100)
        assert model.nodes_bytes(7) == 700

    def test_default_model_is_shared(self):
        assert DEFAULT_MEMORY_MODEL.bytes_per_point > 0


class TestMemoryBreakdown:
    def test_total_combines_all_parts(self):
        breakdown = MemoryBreakdown(
            label_points=100,
            label_functions=10,
            shortcut_points=50,
            shortcut_functions=5,
            structure_nodes=20,
        )
        assert breakdown.total_bytes == (
            breakdown.label_bytes + breakdown.shortcut_bytes + breakdown.structure_bytes
        )
        assert breakdown.total_megabytes == pytest.approx(
            breakdown.total_bytes / (1024 * 1024)
        )

    def test_empty_breakdown_is_zero(self):
        assert MemoryBreakdown().total_bytes == 0

    def test_addition(self):
        first = MemoryBreakdown(label_points=10, label_functions=1, structure_nodes=2)
        second = MemoryBreakdown(shortcut_points=20, shortcut_functions=2)
        combined = first + second
        assert combined.label_points == 10
        assert combined.shortcut_points == 20
        assert combined.structure_nodes == 2
        assert combined.total_bytes == first.total_bytes + second.total_bytes

    def test_more_points_means_more_memory(self):
        small = MemoryBreakdown(shortcut_points=100, shortcut_functions=10)
        large = MemoryBreakdown(shortcut_points=1000, shortcut_functions=10)
        assert large.total_bytes > small.total_bytes
