"""Unit tests for the timing helpers."""

from __future__ import annotations

import time

import pytest

from repro.utils import Stopwatch, Timer, time_call


class TestStopwatch:
    def test_accumulates_elapsed_time(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        assert first > 0
        watch.start()
        time.sleep(0.01)
        watch.stop()
        assert watch.elapsed >= first

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestTimer:
    def test_measure_accumulates_per_name(self):
        timer = Timer()
        with timer.measure("phase"):
            time.sleep(0.005)
        with timer.measure("phase"):
            time.sleep(0.005)
        assert timer.elapsed("phase") >= 0.01

    def test_unknown_phase_is_zero(self):
        assert Timer().elapsed("nothing") == 0.0

    def test_as_dict(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert set(timer.as_dict()) == {"a", "b"}

    def test_exception_inside_measure_still_stops(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer.measure("x"):
                raise ValueError("boom")
        assert timer.elapsed("x") >= 0.0
        # The stopwatch must not be left running.
        with timer.measure("x"):
            pass


class TestTimeCall:
    def test_returns_result_and_positive_time(self):
        seconds, result = time_call(lambda: sum(range(100)))
        assert result == 4950
        assert seconds >= 0.0

    def test_repeat_averages(self):
        seconds, _ = time_call(time.sleep, 0.005, repeat=2)
        assert seconds >= 0.004

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)
