"""Unit tests for the binary-lifting LCA index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.utils import LCAIndex


@pytest.fixture()
def sample_tree() -> LCAIndex:
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    #  /
    # 6
    parents = {0: None, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 3}
    return LCAIndex(parents)


class TestDepth:
    def test_root_depth(self, sample_tree):
        assert sample_tree.depth(0) == 0

    def test_leaf_depth(self, sample_tree):
        assert sample_tree.depth(6) == 3


class TestLCA:
    def test_siblings(self, sample_tree):
        assert sample_tree.lca(3, 4) == 1

    def test_different_subtrees(self, sample_tree):
        assert sample_tree.lca(6, 5) == 0

    def test_ancestor_descendant(self, sample_tree):
        assert sample_tree.lca(1, 6) == 1
        assert sample_tree.lca(6, 1) == 1

    def test_same_node(self, sample_tree):
        assert sample_tree.lca(4, 4) == 4

    def test_root_with_anything(self, sample_tree):
        assert sample_tree.lca(0, 6) == 0

    def test_is_ancestor(self, sample_tree):
        assert sample_tree.is_ancestor(0, 6)
        assert sample_tree.is_ancestor(1, 3)
        assert not sample_tree.is_ancestor(2, 3)
        assert sample_tree.is_ancestor(5, 5)

    def test_forest_raises_across_trees(self):
        index = LCAIndex({0: None, 1: 0, 2: None, 3: 2})
        with pytest.raises(ReproError):
            index.lca(1, 3)
        assert not index.is_ancestor(0, 3)

    def test_cycle_detection(self):
        with pytest.raises(ReproError):
            LCAIndex({0: 1, 1: 0})


class TestAgainstBruteForce:
    def test_random_trees(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            size = int(rng.integers(2, 60))
            parents = {0: None}
            for node in range(1, size):
                parents[node] = int(rng.integers(0, node))
            index = LCAIndex(parents)

            def root_path(node):
                path = [node]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return path

            for _ in range(20):
                a, b = int(rng.integers(0, size)), int(rng.integers(0, size))
                path_a = root_path(a)
                ancestors_b = set(root_path(b))
                expected = next(v for v in path_a if v in ancestors_b)
                assert index.lca(a, b) == expected

    def test_deep_chain(self):
        parents = {0: None}
        for node in range(1, 200):
            parents[node] = node - 1
        index = LCAIndex(parents)
        assert index.lca(150, 199) == 150
        assert index.depth(199) == 199
