"""Unit tests for :class:`repro.graph.TDGraph`."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph


@pytest.fixture()
def simple_graph() -> TDGraph:
    graph = TDGraph()
    w01 = PiecewiseLinearFunction.from_points([(0, 10), (100, 20)])
    w12 = PiecewiseLinearFunction.constant(5.0)
    graph.add_edge(0, 1, w01)
    graph.add_edge(1, 2, w12)
    graph.add_edge(2, 0, PiecewiseLinearFunction.constant(7.0))
    return graph


class TestVertices:
    def test_add_vertex_is_idempotent(self):
        graph = TDGraph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices == 1

    def test_vertex_with_coordinate(self):
        graph = TDGraph()
        graph.add_vertex(3, (1.5, 2.5))
        assert graph.coordinate(3) == (1.5, 2.5)
        assert graph.coordinate(99) is None

    def test_coordinates_returns_copy(self):
        graph = TDGraph()
        graph.add_vertex(1, (0.0, 0.0))
        coords = graph.coordinates()
        coords[1] = (9.0, 9.0)
        assert graph.coordinate(1) == (0.0, 0.0)

    def test_rejects_negative_vertex_ids(self):
        graph = TDGraph()
        with pytest.raises(GraphError):
            graph.add_vertex(-1)

    def test_rejects_non_integer_vertices(self):
        graph = TDGraph()
        with pytest.raises(GraphError):
            graph.add_vertex("a")  # type: ignore[arg-type]
        with pytest.raises(GraphError):
            graph.add_vertex(True)  # bools are not valid vertex ids

    def test_contains_protocol(self, simple_graph):
        assert 0 in simple_graph
        assert 99 not in simple_graph

    def test_remove_vertex_drops_incident_edges(self, simple_graph):
        simple_graph.remove_vertex(1)
        assert not simple_graph.has_vertex(1)
        assert not simple_graph.has_edge(0, 1)
        assert not simple_graph.has_edge(1, 2)
        assert simple_graph.has_edge(2, 0)

    def test_remove_missing_vertex_raises(self, simple_graph):
        with pytest.raises(VertexNotFoundError):
            simple_graph.remove_vertex(42)


class TestEdges:
    def test_counts(self, simple_graph):
        assert simple_graph.num_vertices == 3
        assert simple_graph.num_edges == 3

    def test_weight_lookup(self, simple_graph):
        assert simple_graph.weight(1, 2).evaluate(0.0) == 5.0

    def test_weight_missing_edge_raises(self, simple_graph):
        with pytest.raises(EdgeNotFoundError):
            simple_graph.weight(0, 2)

    def test_weight_missing_vertex_raises(self, simple_graph):
        with pytest.raises(VertexNotFoundError):
            simple_graph.weight(42, 0)

    def test_add_edge_rejects_self_loop(self):
        graph = TDGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, PiecewiseLinearFunction.constant(1.0))

    def test_add_edge_rejects_non_plf_weight(self):
        graph = TDGraph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 5.0)  # type: ignore[arg-type]

    def test_add_edge_replaces_existing(self, simple_graph):
        simple_graph.add_edge(0, 1, PiecewiseLinearFunction.constant(99.0))
        assert simple_graph.weight(0, 1).evaluate(0.0) == 99.0
        assert simple_graph.num_edges == 3

    def test_bidirectional_edge_shares_function_by_default(self):
        graph = TDGraph()
        weight = PiecewiseLinearFunction.constant(4.0)
        graph.add_bidirectional_edge(0, 1, weight)
        assert graph.weight(0, 1) is weight
        assert graph.weight(1, 0) is weight

    def test_bidirectional_edge_with_distinct_reverse(self):
        graph = TDGraph()
        forward = PiecewiseLinearFunction.constant(4.0)
        backward = PiecewiseLinearFunction.constant(6.0)
        graph.add_bidirectional_edge(0, 1, forward, backward)
        assert graph.weight(0, 1).evaluate(0) == 4.0
        assert graph.weight(1, 0).evaluate(0) == 6.0

    def test_set_weight_requires_existing_edge(self, simple_graph):
        with pytest.raises(EdgeNotFoundError):
            simple_graph.set_weight(0, 2, PiecewiseLinearFunction.constant(1.0))

    def test_set_weight_updates_both_directions_of_lookup(self, simple_graph):
        new_weight = PiecewiseLinearFunction.constant(123.0)
        simple_graph.set_weight(0, 1, new_weight)
        assert simple_graph.weight(0, 1) is new_weight
        assert dict(simple_graph.in_items(1))[0] is new_weight

    def test_remove_edge(self, simple_graph):
        simple_graph.remove_edge(0, 1)
        assert not simple_graph.has_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            simple_graph.remove_edge(0, 1)

    def test_edges_iterator_yields_triples(self, simple_graph):
        triples = list(simple_graph.edges())
        assert len(triples) == 3
        assert all(isinstance(w, PiecewiseLinearFunction) for _, _, w in triples)

    def test_total_interpolation_points(self, simple_graph):
        assert simple_graph.total_interpolation_points() == 2 + 1 + 1


class TestNeighbourhoods:
    def test_out_and_in_neighbors(self, simple_graph):
        assert set(simple_graph.out_neighbors(0)) == {1}
        assert set(simple_graph.in_neighbors(0)) == {2}

    def test_neighbors_is_union(self, simple_graph):
        assert simple_graph.neighbors(0) == {1, 2}

    def test_degree_is_undirected(self, simple_graph):
        assert simple_graph.degree(0) == 2

    def test_missing_vertex_raises(self, simple_graph):
        with pytest.raises(VertexNotFoundError):
            list(simple_graph.out_neighbors(42))
        with pytest.raises(VertexNotFoundError):
            list(simple_graph.in_neighbors(42))
        with pytest.raises(VertexNotFoundError):
            simple_graph.neighbors(42)

    def test_undirected_adjacency(self, simple_graph):
        adjacency = simple_graph.undirected_adjacency()
        assert adjacency[1] == {0, 2}


class TestViews:
    def test_copy_is_structurally_independent(self, simple_graph):
        clone = simple_graph.copy()
        clone.remove_edge(0, 1)
        assert simple_graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_copy_preserves_coordinates(self):
        graph = TDGraph()
        graph.add_vertex(5, (1.0, 2.0))
        assert graph.copy().coordinate(5) == (1.0, 2.0)

    def test_subgraph_keeps_internal_edges_only(self, simple_graph):
        sub = simple_graph.subgraph([0, 1])
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)

    def test_subgraph_missing_vertex_raises(self, simple_graph):
        with pytest.raises(VertexNotFoundError):
            simple_graph.subgraph([0, 99])

    def test_repr(self, simple_graph):
        assert "num_vertices=3" in repr(simple_graph)
