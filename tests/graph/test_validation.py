"""Unit tests for graph validation."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph, grid_network, is_strongly_connected, validate_graph


def two_cycle() -> TDGraph:
    graph = TDGraph()
    weight = PiecewiseLinearFunction.constant(3.0)
    graph.add_bidirectional_edge(0, 1, weight)
    return graph


class TestValidateGraph:
    def test_valid_generated_network(self):
        report = validate_graph(grid_network(4, 4, seed=0))
        assert report.is_valid
        assert report.is_connected
        assert report.is_strongly_connected
        assert not report.non_fifo_edges
        assert not report.negative_cost_edges

    def test_empty_graph_is_invalid(self):
        report = validate_graph(TDGraph())
        assert not report.is_valid
        with pytest.raises(GraphError):
            report.raise_if_invalid()

    def test_detects_non_fifo_edge(self):
        graph = two_cycle()
        graph.add_edge(
            1, 2, PiecewiseLinearFunction([0.0, 10.0], [500.0, 10.0], validate=False)
        )
        graph.add_edge(2, 1, PiecewiseLinearFunction.constant(5.0))
        graph.add_edge(2, 0, PiecewiseLinearFunction.constant(5.0))
        graph.add_edge(0, 2, PiecewiseLinearFunction.constant(5.0))
        report = validate_graph(graph)
        assert (1, 2) in report.non_fifo_edges
        assert not report.is_valid
        with pytest.raises(GraphError, match="FIFO"):
            report.raise_if_invalid()

    def test_detects_weak_connectivity_only(self):
        graph = two_cycle()
        # One-way street into a dead end: weakly but not strongly connected.
        graph.add_edge(1, 2, PiecewiseLinearFunction.constant(1.0))
        report = validate_graph(graph)
        assert report.is_connected
        assert not report.is_strongly_connected
        assert not report.is_valid
        with pytest.raises(GraphError, match="strongly connected"):
            report.raise_if_invalid()

    def test_detects_disconnected_components(self):
        graph = two_cycle()
        graph.add_bidirectional_edge(5, 6, PiecewiseLinearFunction.constant(2.0))
        report = validate_graph(graph)
        assert not report.is_connected
        assert not report.is_strongly_connected

    def test_isolated_vertices_reported(self):
        graph = two_cycle()
        graph.add_vertex(9)
        report = validate_graph(graph)
        assert report.isolated_vertices == [9]

    def test_valid_report_raises_nothing(self):
        validate_graph(two_cycle()).raise_if_invalid()


class TestStrongConnectivity:
    def test_two_cycle_is_strongly_connected(self):
        assert is_strongly_connected(two_cycle())

    def test_empty_graph_is_not(self):
        assert not is_strongly_connected(TDGraph())

    def test_one_way_chain_is_not(self):
        graph = TDGraph()
        graph.add_edge(0, 1, PiecewiseLinearFunction.constant(1.0))
        graph.add_edge(1, 2, PiecewiseLinearFunction.constant(1.0))
        assert not is_strongly_connected(graph)
