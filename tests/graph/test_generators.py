"""Unit tests for the synthetic road-network generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    WeightGenerator,
    ensure_connected,
    grid_network,
    random_geometric_network,
    ring_radial_network,
    validate_graph,
)


class TestGridNetwork:
    def test_vertex_count(self):
        graph = grid_network(4, 5, seed=0)
        assert graph.num_vertices == 20

    def test_all_vertices_have_coordinates(self):
        graph = grid_network(3, 3, seed=0)
        assert all(graph.coordinate(v) is not None for v in graph.vertices())

    def test_edges_are_bidirectional(self):
        graph = grid_network(4, 4, seed=1)
        for u, v, _ in graph.edges():
            assert graph.has_edge(v, u)

    def test_valid_time_dependent_graph(self):
        graph = grid_network(5, 5, seed=2)
        report = validate_graph(graph)
        assert report.is_valid, report

    def test_deterministic_given_seed(self):
        a = grid_network(4, 4, seed=3)
        b = grid_network(4, 4, seed=3)
        assert a.num_edges == b.num_edges
        assert sorted((u, v) for u, v, _ in a.edges()) == sorted(
            (u, v) for u, v, _ in b.edges()
        )

    def test_num_points_parameter_controls_profile_size(self):
        graph = grid_network(3, 3, num_points=5, seed=0)
        sizes = {weight.size for _, _, weight in graph.edges()}
        assert max(sizes) <= 5
        assert 5 in sizes

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(GraphError):
            grid_network(1, 5)


class TestRingRadialNetwork:
    def test_vertex_count(self):
        graph = ring_radial_network(3, 6, seed=0)
        assert graph.num_vertices == 1 + 3 * 6

    def test_strongly_connected(self):
        graph = ring_radial_network(2, 8, seed=1)
        assert validate_graph(graph).is_strongly_connected

    def test_rejects_too_few_spokes(self):
        with pytest.raises(GraphError):
            ring_radial_network(2, 2)


class TestRandomGeometricNetwork:
    def test_vertex_count_and_connectivity(self):
        graph = random_geometric_network(80, seed=5)
        assert graph.num_vertices == 80
        report = validate_graph(graph)
        assert report.is_strongly_connected

    def test_road_like_average_degree(self):
        graph = random_geometric_network(150, seed=6)
        average_degree = graph.num_edges / graph.num_vertices
        # Directed edges, so road networks land roughly between 2 and 8.
        assert 2.0 <= average_degree <= 8.0

    def test_deterministic_given_seed(self):
        a = random_geometric_network(60, seed=9)
        b = random_geometric_network(60, seed=9)
        assert a.num_edges == b.num_edges

    def test_different_seed_changes_topology(self):
        a = random_geometric_network(60, seed=9)
        b = random_geometric_network(60, seed=10)
        assert sorted((u, v) for u, v, _ in a.edges()) != sorted(
            (u, v) for u, v, _ in b.edges()
        )

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GraphError):
            random_geometric_network(3)

    def test_weights_are_fifo(self):
        graph = random_geometric_network(50, seed=11)
        assert all(weight.is_fifo() for _, _, weight in graph.edges())


class TestEnsureConnected:
    def test_connects_two_components(self):
        from repro.graph import TDGraph
        from repro.functions import PiecewiseLinearFunction

        graph = TDGraph()
        graph.add_vertex(0, (0.0, 0.0))
        graph.add_vertex(1, (10.0, 0.0))
        graph.add_vertex(2, (1_000.0, 0.0))
        graph.add_vertex(3, (1_010.0, 0.0))
        weight = PiecewiseLinearFunction.constant(5.0)
        graph.add_bidirectional_edge(0, 1, weight)
        graph.add_bidirectional_edge(2, 3, weight)
        ensure_connected(graph, WeightGenerator(3, seed=0))
        assert validate_graph(graph).is_strongly_connected

    def test_noop_on_connected_graph(self):
        graph = grid_network(3, 3, seed=0)
        edges_before = graph.num_edges
        ensure_connected(graph, WeightGenerator(3, seed=0))
        assert graph.num_edges == edges_before
