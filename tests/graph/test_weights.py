"""Unit tests for the synthetic congestion-profile generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidFunctionError
from repro.functions import DAY_SECONDS
from repro.graph import WeightGenerator, constant_weight, daily_profile, enforce_fifo


class TestEnforceFifo:
    def test_no_change_when_already_fifo(self):
        times = np.array([0.0, 100.0, 200.0])
        costs = np.array([50.0, 60.0, 55.0])
        fixed = enforce_fifo(times, costs)
        assert np.allclose(fixed, costs)

    def test_repairs_violation(self):
        times = np.array([0.0, 10.0])
        costs = np.array([200.0, 50.0])  # slope -15 < -1
        fixed = enforce_fifo(times, costs)
        assert fixed[1] >= costs[0] - 10.0
        # The repaired profile is FIFO.
        assert np.all(np.diff(fixed) >= -np.diff(times) - 1e-9)

    def test_result_is_positive(self):
        times = np.array([0.0, 10.0])
        costs = np.array([0.0, 0.0])
        assert np.all(enforce_fifo(times, costs) > 0)

    def test_input_not_mutated(self):
        times = np.array([0.0, 10.0])
        costs = np.array([200.0, 50.0])
        enforce_fifo(times, costs)
        assert costs[1] == 50.0


class TestDailyProfile:
    def test_exact_number_of_points(self):
        for c in range(2, 7):
            profile = daily_profile(100.0, c, rng=np.random.default_rng(1))
            assert profile.size == c

    def test_single_point_profile_is_constant(self):
        profile = daily_profile(100.0, 1)
        assert profile.is_constant()
        assert profile.evaluate(0.0) == 100.0

    def test_profiles_are_fifo(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            profile = daily_profile(rng.uniform(10, 500), 5, rng=rng)
            assert profile.is_fifo()

    def test_profiles_cover_the_whole_day(self):
        profile = daily_profile(100.0, 4, rng=np.random.default_rng(0))
        assert profile.times[0] == 0.0
        assert profile.times[-1] == DAY_SECONDS

    def test_costs_never_fall_below_half_base(self):
        rng = np.random.default_rng(5)
        profile = daily_profile(100.0, 6, rng=rng)
        assert profile.min_cost >= 50.0

    def test_peak_factor_increases_rush_hour_cost(self):
        calm = daily_profile(100.0, 6, peak_factor=1.0, jitter=0.0, rng=np.random.default_rng(2))
        rush = daily_profile(100.0, 6, peak_factor=3.0, jitter=0.0, rng=np.random.default_rng(2))
        assert rush.max_cost > calm.max_cost

    def test_rejects_nonpositive_base_cost(self):
        with pytest.raises(InvalidFunctionError):
            daily_profile(0.0, 3)
        with pytest.raises(InvalidFunctionError):
            daily_profile(-5.0, 3)

    def test_rejects_nonpositive_num_points(self):
        with pytest.raises(InvalidFunctionError):
            daily_profile(10.0, 0)


class TestConstantWeight:
    def test_constant_weight(self):
        assert constant_weight(12.0).evaluate(5_000.0) == 12.0

    def test_constant_weight_rejects_negative(self):
        with pytest.raises(InvalidFunctionError):
            constant_weight(-1.0)


class TestWeightGenerator:
    def test_deterministic_given_seed(self):
        first = WeightGenerator(3, seed=7)
        second = WeightGenerator(3, seed=7)
        a = first.profile_for(100.0)
        b = second.profile_for(100.0)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = WeightGenerator(4, seed=1).profile_for(100.0)
        b = WeightGenerator(4, seed=2).profile_for(100.0)
        assert not a.allclose(b)

    def test_generator_respects_num_points(self):
        generator = WeightGenerator(5, seed=0)
        assert generator.profile_for(60.0).size == 5

    def test_rejects_invalid_num_points(self):
        with pytest.raises(InvalidFunctionError):
            WeightGenerator(0)

    def test_perturbed_keeps_shape_and_fifo(self):
        generator = WeightGenerator(4, seed=0)
        original = generator.profile_for(100.0)
        perturbed = generator.perturbed(original, scale=0.3)
        assert perturbed.size == original.size
        assert perturbed.is_fifo()
        assert perturbed.is_nonnegative()

    def test_perturbed_changes_costs(self):
        generator = WeightGenerator(4, seed=0)
        original = generator.profile_for(100.0)
        perturbed = generator.perturbed(original, scale=0.3)
        assert not original.allclose(perturbed, tolerance=1e-6)
