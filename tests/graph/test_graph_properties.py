"""Property-based tests for the graph substrate.

Random sequences of mutations must keep the adjacency structure internally
consistent (out/in views agree), and generated networks must always satisfy
the invariants the index relies on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph, grid_network, validate_graph


@st.composite
def edge_operations(draw):
    """A random sequence of add/remove operations over a small vertex universe."""
    size = draw(st.integers(min_value=8, max_value=40))
    operations = []
    for _ in range(size):
        kind = draw(st.sampled_from(["add", "remove_edge", "remove_vertex"]))
        u = draw(st.integers(min_value=0, max_value=9))
        v = draw(st.integers(min_value=0, max_value=9))
        cost = draw(st.floats(min_value=0.5, max_value=500.0))
        operations.append((kind, u, v, cost))
    return operations


@settings(max_examples=60, deadline=None)
@given(operations=edge_operations())
def test_out_and_in_views_stay_consistent(operations):
    graph = TDGraph()
    for kind, u, v, cost in operations:
        if u == v:
            continue
        if kind == "add":
            graph.add_edge(u, v, PiecewiseLinearFunction.constant(cost))
        elif kind == "remove_edge" and graph.has_edge(u, v):
            graph.remove_edge(u, v)
        elif kind == "remove_vertex" and graph.has_vertex(u):
            graph.remove_vertex(u)
    # Invariant: forward and backward adjacency describe the same edge set.
    forward = {(u, v) for u, v, _ in graph.edges()}
    backward = {
        (pred, v) for v in graph.vertices() for pred, _ in graph.in_items(v)
    }
    assert forward == backward
    assert graph.num_edges == len(forward)
    # Degrees are consistent with the neighbourhood view.
    for vertex in graph.vertices():
        assert graph.degree(vertex) == len(graph.neighbors(vertex))


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=6),
    cols=st.integers(min_value=2, max_value=6),
    c=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_generated_grids_always_satisfy_index_assumptions(rows, cols, c, seed):
    graph = grid_network(rows, cols, num_points=c, seed=seed)
    report = validate_graph(graph)
    assert report.is_valid
    assert graph.num_vertices == rows * cols
    assert all(weight.size <= c for _, _, weight in graph.edges())
    assert all(weight.min_cost > 0 for _, _, weight in graph.edges())


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cost=st.floats(min_value=0.1, max_value=1_000.0),
)
def test_copy_and_subgraph_do_not_alias_structure(seed, cost):
    graph = grid_network(3, 3, seed=seed % 50)
    clone = graph.copy()
    u, v, _ = next(iter(graph.edges()))
    clone.set_weight(u, v, PiecewiseLinearFunction.constant(cost))
    # Changing the clone must not change the original's weight object.
    assert graph.weight(u, v) is not clone.weight(u, v)
    sub = graph.subgraph(list(graph.vertices()))
    assert sub.num_edges == graph.num_edges
