"""Unit tests for the graph builders (edge lists, networkx, paper example)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.functions import PiecewiseLinearFunction
from repro.graph import (
    from_networkx,
    from_static_edge_list,
    from_td_edge_list,
    paper_example_graph,
    to_networkx,
    validate_graph,
)


class TestFromStaticEdgeList:
    def test_constant_weights(self):
        graph = from_static_edge_list([(0, 1, 10.0), (1, 2, 20.0)])
        assert graph.weight(0, 1).is_constant()
        assert graph.weight(0, 1).evaluate(0.0) == 10.0
        # bidirectional by default
        assert graph.has_edge(1, 0)

    def test_directed_only(self):
        graph = from_static_edge_list([(0, 1, 10.0)], bidirectional=False)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_time_dependent_weights_from_static_costs(self):
        graph = from_static_edge_list([(0, 1, 60.0)], num_points=4, seed=1)
        weight = graph.weight(0, 1)
        assert weight.size == 4
        # The static cost is the free-flow (minimum) cost of the profile.
        assert weight.min_cost >= 0.5 * 60.0

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            from_static_edge_list([(0, 1, -5.0)])

    def test_coordinates_attached(self):
        graph = from_static_edge_list(
            [(0, 1, 5.0)], coordinates={0: (0.0, 0.0), 1: (3.0, 4.0)}
        )
        assert graph.coordinate(1) == (3.0, 4.0)


class TestFromTdEdgeList:
    def test_explicit_interpolation_points(self):
        graph = from_td_edge_list([(0, 1, [(0, 10), (100, 20)])])
        assert graph.weight(0, 1).evaluate(50.0) == pytest.approx(15.0)

    def test_bidirectional_option(self):
        graph = from_td_edge_list([(0, 1, [(0, 10)])], bidirectional=True)
        assert graph.has_edge(1, 0)


class TestNetworkxConversion:
    def test_from_networkx_numeric_weights(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1, weight=7.0)
        nx_graph.add_node(0, pos=(0.0, 1.0))
        graph = from_networkx(nx_graph)
        assert graph.weight(0, 1).evaluate(0.0) == 7.0
        assert graph.has_edge(1, 0)  # undirected source -> both directions
        assert graph.coordinate(0) == (0.0, 1.0)

    def test_from_networkx_directed(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(0, 1, weight=7.0)
        graph = from_networkx(nx_graph)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_from_networkx_plf_weights(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(0, 1, weight=PiecewiseLinearFunction.constant(3.0))
        nx_graph.add_edge(1, 0, weight=[(0, 4), (10, 6)])
        graph = from_networkx(nx_graph)
        assert graph.weight(0, 1).evaluate(0.0) == 3.0
        assert graph.weight(1, 0).evaluate(10.0) == 6.0

    def test_round_trip_to_networkx(self):
        graph = from_static_edge_list([(0, 1, 5.0), (1, 2, 6.0)])
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == graph.num_edges
        assert nx_graph[0][1]["free_flow"] == 5.0


class TestPaperExampleGraph:
    def test_size_matches_figure(self):
        graph = paper_example_graph()
        assert graph.num_vertices == 15

    def test_figure_1b_weights(self):
        graph = paper_example_graph()
        assert graph.weight(1, 2).points() == [(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]
        assert graph.weight(4, 9).points() == [(0.0, 5.0), (60.0, 15.0)]

    def test_symmetric_weights(self):
        graph = paper_example_graph()
        assert graph.weight(1, 2).allclose(graph.weight(2, 1))

    def test_valid(self):
        assert validate_graph(paper_example_graph()).is_valid
