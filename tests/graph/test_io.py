"""Unit tests for graph serialisation (JSON and TD-DIMACS)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SerializationError
from repro.graph import (
    grid_network,
    load_graph_dimacs,
    load_graph_json,
    paper_example_graph,
    save_graph_dimacs,
    save_graph_json,
)


def graphs_equal(first, second) -> bool:
    if first.num_vertices != second.num_vertices or first.num_edges != second.num_edges:
        return False
    for u, v, weight in first.edges():
        if not second.has_edge(u, v):
            return False
        if not weight.allclose(second.weight(u, v), tolerance=1e-6):
            return False
    return True


class TestJsonRoundTrip:
    def test_round_trip_grid(self, tmp_path):
        graph = grid_network(4, 4, seed=1)
        path = tmp_path / "grid.json"
        save_graph_json(graph, path)
        loaded = load_graph_json(path)
        assert graphs_equal(graph, loaded)

    def test_round_trip_preserves_coordinates(self, tmp_path):
        graph = grid_network(3, 3, seed=1)
        path = tmp_path / "grid.json"
        save_graph_json(graph, path)
        loaded = load_graph_json(path)
        for vertex in graph.vertices():
            assert loaded.coordinate(vertex) == pytest.approx(graph.coordinate(vertex))

    def test_round_trip_paper_example(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "example.json"
        save_graph_json(graph, path)
        assert graphs_equal(graph, load_graph_json(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_graph_json(tmp_path / "nothing.json")

    def test_wrong_format_marker_raises(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            load_graph_json(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "repro-td-graph", "version": 999}))
        with pytest.raises(SerializationError):
            load_graph_json(path)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_graph_json(path)


class TestDimacsRoundTrip:
    def test_round_trip(self, tmp_path):
        graph = grid_network(4, 4, seed=2)
        path = tmp_path / "grid.gr"
        save_graph_dimacs(graph, path, comment="scaled grid network")
        loaded = load_graph_dimacs(path)
        assert graphs_equal(graph, loaded)

    def test_comment_written(self, tmp_path):
        graph = grid_network(3, 3, seed=2)
        path = tmp_path / "grid.gr"
        save_graph_dimacs(graph, path, comment="line one\nline two")
        text = path.read_text()
        assert text.startswith("c line one\nc line two\n")

    def test_unknown_record_raises(self, tmp_path):
        path = tmp_path / "broken.gr"
        path.write_text("p sp 2 1\nx 1 2 3\n")
        with pytest.raises(SerializationError):
            load_graph_dimacs(path)

    def test_truncated_interpolation_points_raise(self, tmp_path):
        path = tmp_path / "broken.gr"
        path.write_text("a 1 2 3 0 10 20 10\n")
        with pytest.raises(SerializationError):
            load_graph_dimacs(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_graph_dimacs(tmp_path / "nope.gr")
