"""ScenarioDriver: deterministic traffic patterns that clear back to baseline."""

from __future__ import annotations

import pytest

from repro.exceptions import TrafficControlError
from repro.graph import TDGraph
from repro.traffic import ScenarioDriver


def test_empty_graph_rejected():
    with pytest.raises(TrafficControlError):
        ScenarioDriver(TDGraph())


def test_same_seed_same_events(small_grid):
    events_a = ScenarioDriver(small_grid, seed=11).rush_hour()
    events_b = ScenarioDriver(small_grid, seed=11).rush_hour()
    assert events_a == events_b


def test_different_seeds_differ(small_grid):
    events_a = ScenarioDriver(small_grid, seed=1).flash_incident(edges=5)
    events_b = ScenarioDriver(small_grid, seed=2).flash_incident(edges=5)
    assert events_a != events_b


def test_baseline_captured_before_mutation(small_grid):
    graph = small_grid.copy()
    driver = ScenarioDriver(graph, seed=0)
    source, target = driver.edges[0]
    original = driver.baseline(source, target)
    graph.set_weight(source, target, original.shift(500.0))
    # The driver still restores relative to the captured original.
    assert driver.baseline(source, target) is original


class TestFlashIncident:
    def test_site_is_connected_and_clears(self, small_grid):
        driver = ScenarioDriver(small_grid, seed=5)
        events = driver.flash_incident(edges=4, delay=600.0, clear_after=30.0)
        hits = [e for e in events if e.delay > 0.0]
        clears = [e for e in events if e.delay == 0.0]
        assert len(hits) == 4
        assert {(e.source, e.target) for e in hits} == {
            (e.source, e.target) for e in clears
        }
        assert all(e.at == hits[0].at + 30.0 for e in clears)
        # Grown along adjacency: the site shares vertices.
        site_vertices = {v for e in hits for v in (e.source, e.target)}
        assert len(site_vertices) < 2 * len(hits)

    def test_no_clear_when_not_asked(self, small_grid):
        events = ScenarioDriver(small_grid, seed=5).flash_incident(edges=2)
        assert all(e.delay > 0.0 for e in events)


class TestRushHour:
    def test_ramps_then_clears_every_touched_edge(self, small_grid):
        driver = ScenarioDriver(small_grid, seed=9)
        events = driver.rush_hour(waves=3, edges_per_wave=4, peak_delay=300.0)
        delays = sorted({e.delay for e in events})
        assert delays == [0.0, 100.0, 200.0, 300.0]
        perturbed = {(e.source, e.target) for e in events if e.delay > 0.0}
        cleared = {(e.source, e.target) for e in events if e.delay == 0.0}
        assert perturbed == cleared

    def test_waves_validated(self, small_grid):
        with pytest.raises(ValueError):
            ScenarioDriver(small_grid, seed=9).rush_hour(waves=0)


class TestRollingClosure:
    def test_one_segment_blocked_at_a_time(self, small_grid):
        driver = ScenarioDriver(small_grid, seed=3)
        events = driver.rolling_closure(length=5, delay=1800.0, spacing=1.0)
        blocked: set[tuple[int, int]] = set()
        max_blocked = 0
        for event in sorted(events, key=lambda e: e.at):
            edge = (event.source, event.target)
            if event.delay > 0.0:
                blocked.add(edge)
            else:
                blocked.discard(edge)
            max_blocked = max(max_blocked, len(blocked))
        assert not blocked  # the corridor fully reopens
        assert max_blocked <= 2  # close-at-t and reopen-at-t interleave

    def test_corridor_is_contiguous(self, small_grid):
        driver = ScenarioDriver(small_grid, seed=3)
        events = driver.rolling_closure(length=5)
        closures = [e for e in sorted(events, key=lambda ev: ev.at) if e.delay > 0]
        for previous, current in zip(closures, closures[1:]):
            assert current.source == previous.target


class TestReplay:
    def test_updates_resolve_weights_and_anchor_origin(self, small_grid):
        driver = ScenarioDriver(small_grid, seed=7)
        events = driver.flash_incident(at=2.0, edges=2, delay=120.0, clear_after=3.0)
        updates = list(driver.updates(events, origin=1000.0))
        assert [u.event_at for u in updates] == [1002.0, 1002.0, 1005.0, 1005.0]
        for update, event in zip(updates, sorted(events, key=lambda e: e.at)):
            base = driver.baseline(event.source, event.target)
            if event.delay:
                assert update.weight.allclose(base.shift(event.delay))
            else:
                assert update.weight is base

    def test_clearing_restores_baseline_exactly(self, small_grid):
        graph = small_grid.copy()
        driver = ScenarioDriver(graph, seed=13)
        events = driver.rush_hour(waves=2, edges_per_wave=3)
        for update in driver.updates(events, origin=0.0):
            graph.set_weight(update.source, update.target, update.weight)
        for source, target in driver.edges:
            assert graph.weight(source, target) is driver.baseline(source, target)
