"""Policy layer: cost EWMAs and the patch/clone/rebuild decision rule."""

from __future__ import annotations

import pytest

from repro.traffic import (
    ACTION_CLONE_SWAP,
    ACTION_PATCH,
    ACTION_REBUILD,
    ACTIONS,
    AdaptivePolicy,
    CostModel,
    FixedPolicy,
    PolicyObservation,
)


def _obs(
    *,
    dirty: int,
    vertices: int = 100,
    qps: float = 0.0,
    expected_cost=None,
) -> PolicyObservation:
    kwargs = {}
    if expected_cost is not None:
        kwargs["expected_cost"] = expected_cost
    return PolicyObservation(
        raw_updates=dirty,
        coalesced_edges=dirty,
        dirty_estimate=dirty,
        num_vertices=vertices,
        qps=qps,
        backlog_age_seconds=0.0,
        **kwargs,
    )


class TestCostModel:
    def test_unmeasured_actions_return_none(self):
        model = CostModel()
        assert model.expect(ACTION_PATCH) is None
        assert model.observations(ACTION_PATCH) == 0

    def test_first_observation_seeds_the_ewma(self):
        model = CostModel(alpha=0.5)
        model.observe(ACTION_PATCH, 2.0)
        assert model.expect(ACTION_PATCH) == 2.0

    def test_ewma_folds_with_alpha(self):
        model = CostModel(alpha=0.5)
        model.observe(ACTION_PATCH, 2.0)
        model.observe(ACTION_PATCH, 4.0)
        assert model.expect(ACTION_PATCH) == pytest.approx(3.0)
        assert model.observations(ACTION_PATCH) == 2

    def test_snapshot_is_immutable_and_detached(self):
        model = CostModel()
        model.observe(ACTION_REBUILD, 1.5)
        snap = model.snapshot()
        assert snap[ACTION_REBUILD] == 1.5
        with pytest.raises(TypeError):
            snap[ACTION_PATCH] = 0.0  # type: ignore[index]

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)


class TestPolicyObservation:
    def test_dirty_fraction_clamped(self):
        assert _obs(dirty=250, vertices=100).dirty_fraction == 1.0
        assert _obs(dirty=10, vertices=100).dirty_fraction == pytest.approx(0.1)

    def test_empty_graph_counts_as_fully_dirty(self):
        assert _obs(dirty=1, vertices=0).dirty_fraction == 1.0


class TestAdaptivePolicy:
    def test_small_cone_light_traffic_patches(self):
        decision = AdaptivePolicy().decide(_obs(dirty=5, qps=10.0))
        assert decision.action == ACTION_PATCH

    def test_small_cone_heavy_traffic_clones(self):
        decision = AdaptivePolicy().decide(_obs(dirty=5, qps=500.0))
        assert decision.action == ACTION_CLONE_SWAP
        assert "qps" in decision.reason

    def test_large_cone_rebuilds_regardless_of_traffic(self):
        decision = AdaptivePolicy().decide(_obs(dirty=80, qps=0.0))
        assert decision.action == ACTION_REBUILD

    def test_middle_band_defaults_to_clone_swap(self):
        decision = AdaptivePolicy().decide(_obs(dirty=30, qps=10.0))
        assert decision.action == ACTION_CLONE_SWAP

    def test_middle_band_prefers_measured_cheaper_rebuild(self):
        costs = {ACTION_CLONE_SWAP: 2.0, ACTION_REBUILD: 0.5}
        decision = AdaptivePolicy().decide(
            _obs(dirty=30, qps=10.0, expected_cost=costs)
        )
        assert decision.action == ACTION_REBUILD

    def test_middle_band_ignores_half_measured_costs(self):
        # Only rebuild measured: no comparison possible, stay on clone_swap.
        decision = AdaptivePolicy().decide(
            _obs(dirty=30, qps=10.0, expected_cost={ACTION_REBUILD: 0.1})
        )
        assert decision.action == ACTION_CLONE_SWAP

    def test_threshold_ordering_validated(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(patch_dirty_fraction=0.6, rebuild_dirty_fraction=0.5)

    def test_every_decision_names_a_known_action_with_a_reason(self):
        policy = AdaptivePolicy()
        for dirty in (0, 5, 15, 49, 50, 99, 200):
            for qps in (0.0, 49.0, 51.0, 10_000.0):
                decision = policy.decide(_obs(dirty=dirty, qps=qps))
                assert decision.action in ACTIONS
                assert decision.reason


class TestFixedPolicy:
    @pytest.mark.parametrize("action", ACTIONS)
    def test_always_returns_its_action(self, action):
        decision = FixedPolicy(action).decide(_obs(dirty=50))
        assert decision.action == action

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FixedPolicy("defragment")
