"""UpdateStream: the thread-safe hand-off between producers and the loop."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import TrafficControlError
from repro.functions import PiecewiseLinearFunction
from repro.traffic import EdgeUpdate, UpdateStream
from repro.utils.timing import FakeClock


def _weight(cost: float = 10.0) -> PiecewiseLinearFunction:
    return PiecewiseLinearFunction.constant(cost)


class TestEdgeUpdate:
    def test_edge_key(self):
        update = EdgeUpdate(source=3, target=7, weight=_weight(), event_at=1.0)
        assert update.edge == (3, 7)

    def test_frozen(self):
        update = EdgeUpdate(source=3, target=7, weight=_weight(), event_at=1.0)
        with pytest.raises(AttributeError):
            update.source = 4  # type: ignore[misc]


class TestUpdateStream:
    def test_emit_stamps_event_time_from_clock(self):
        clock = FakeClock(start=100.0)
        stream = UpdateStream(clock=clock)
        update = stream.emit(0, 1, _weight())
        assert update.event_at == 100.0
        clock.advance(5.0)
        assert stream.emit(0, 1, _weight()).event_at == 105.0

    def test_explicit_event_time_wins(self):
        stream = UpdateStream(clock=FakeClock(start=100.0))
        assert stream.emit(0, 1, _weight(), event_at=42.0).event_at == 42.0

    def test_drain_takes_everything_oldest_first(self):
        stream = UpdateStream(clock=FakeClock())
        for i in range(5):
            stream.emit(i, i + 1, _weight(), event_at=float(i))
        assert stream.pending == 5
        drained = stream.drain()
        assert [u.source for u in drained] == [0, 1, 2, 3, 4]
        assert stream.pending == 0
        assert stream.drain() == []
        assert stream.total_pushed == 5

    def test_extend_consumes_iterables(self):
        stream = UpdateStream(clock=FakeClock())
        updates = (
            EdgeUpdate(source=i, target=i + 1, weight=_weight(), event_at=float(i))
            for i in range(3)
        )
        assert stream.extend(updates) == 3
        assert stream.pending == 3

    def test_callback_producer(self):
        stream = UpdateStream(clock=FakeClock(start=7.0))
        sink = stream.as_callback()
        update = sink(1, 2, _weight(55.0))
        assert stream.pending == 1
        assert update.event_at == 7.0
        assert update.edge == (1, 2)

    def test_bounded_stream_drops_oldest_and_counts(self):
        stream = UpdateStream(clock=FakeClock(), max_pending=2)
        for i in range(4):
            stream.emit(i, i + 1, _weight(), event_at=float(i))
        assert stream.pending == 2
        assert stream.dropped == 2
        assert stream.total_pushed == 4
        # Oldest gone: the survivors are the newest two.
        assert [u.source for u in stream.drain()] == [2, 3]

    def test_closed_stream_refuses_pushes_but_stays_drainable(self):
        stream = UpdateStream(clock=FakeClock())
        stream.emit(0, 1, _weight())
        stream.close()
        assert stream.closed
        with pytest.raises(TrafficControlError):
            stream.emit(0, 1, _weight())
        assert len(stream.drain()) == 1

    def test_concurrent_producers_lose_nothing(self):
        stream = UpdateStream(clock=FakeClock())
        per_thread = 200

        def produce(worker: int) -> None:
            for i in range(per_thread):
                stream.emit(worker, i, _weight(), event_at=float(i))

        threads = [
            threading.Thread(target=produce, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stream.pending == 4 * per_thread
        assert stream.total_pushed == 4 * per_thread
        assert stream.dropped == 0
