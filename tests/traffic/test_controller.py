"""TrafficController: coalescing, action execution, staleness accounting.

Every action's end state is checked against the strongest oracle available:
a fresh engine built from a shadow graph that tracked the same updates —
answers must match bit for bit.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import create_engine
from repro.exceptions import TrafficControlError, UnknownDeploymentError
from repro.obs import Observability
from repro.serving import EngineHost
from repro.traffic import (
    ACTION_CLONE_SWAP,
    ACTION_PATCH,
    ACTION_REBUILD,
    ACTIONS,
    FixedPolicy,
    PolicyDecision,
    ScenarioDriver,
    TrafficController,
)
from repro.utils.timing import FakeClock


def _workload(graph, count=20, seed=91):
    rng = np.random.default_rng(seed)
    vertices = sorted(graph.vertices())
    return [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(0.0, 86_400.0)),
        )
        for _ in range(count)
    ]


@pytest.fixture()
def host(small_grid):
    with EngineHost(max_batch_size=32, max_wait_ms=1.0) as h:
        h.deploy("prod", "td-h2h", small_grid.copy())
        yield h


class TestLifecycle:
    def test_unknown_deployment_rejected_eagerly(self, host):
        with pytest.raises(UnknownDeploymentError):
            TrafficController(host, "ghost")

    def test_step_with_empty_stream_is_a_noop(self, host):
        with TrafficController(host, "prod") as controller:
            assert controller.step() is None
            assert controller.stats().steps == 0

    def test_closed_controller_refuses_steps_and_pushes(self, host):
        controller = TrafficController(host, "prod")
        controller.close()
        with pytest.raises(TrafficControlError):
            controller.step()
        with pytest.raises(TrafficControlError):
            controller.emit_delay(0, 1, 60.0)
        controller.close()  # idempotent


class TestCoalescing:
    def test_latest_event_per_edge_wins(self, host, small_grid):
        clock = FakeClock()
        with TrafficController(
            host, "prod", policy=FixedPolicy(ACTION_PATCH), clock=clock
        ) as controller:
            base = small_grid.weight(0, 1)
            # Out-of-order arrival: the newer event is pushed first.
            controller.stream.emit(0, 1, base.shift(600.0), event_at=10.0)
            controller.stream.emit(0, 1, base.shift(60.0), event_at=5.0)
            report = controller.step()
            assert report is not None
            assert report.raw_updates == 2
            assert report.coalesced_edges == 1
            live = host.deployment("prod").engine.graph
            assert live.weight(0, 1).allclose(base.shift(600.0))
            stats = controller.stats()
            assert stats.updates_ingested == 2
            assert stats.updates_coalesced == 1


class TestActions:
    @pytest.mark.parametrize("action", ACTIONS)
    def test_each_action_converges_to_fresh_rebuild_oracle(
        self, host, small_grid, action
    ):
        shadow = small_grid.copy()
        queries = _workload(shadow)
        with TrafficController(
            host, "prod", policy=FixedPolicy(action)
        ) as controller:
            driver = ScenarioDriver(shadow, seed=4)
            events = driver.flash_incident(edges=3, delay=420.0)
            for update in driver.updates(events, origin=0.0):
                controller.ingest(update)
                shadow.set_weight(update.source, update.target, update.weight)
            report = controller.step()
            assert report is not None
            assert report.action == action
            assert report.coalesced_edges == 3
            assert report.dirty_estimate >= 1
            oracle = create_engine("td-h2h", shadow.copy())
            for source, target, departure in queries:
                assert (
                    host.query("prod", source, target, departure)
                    == oracle.query(source, target, departure).cost
                )
            stats = controller.stats()
            assert stats.steps == 1
            assert stats.actions[action] == 1
            assert stats.last_action == action

    def test_emit_delay_is_baseline_relative_and_clears(self, host, small_grid):
        queries = _workload(small_grid, count=10, seed=92)
        baseline = create_engine("td-h2h", small_grid.copy())
        expected = [baseline.query(s, t, d).cost for s, t, d in queries]
        with TrafficController(
            host, "prod", policy=FixedPolicy(ACTION_PATCH)
        ) as controller:
            # Repeated emits do not compound: each is relative to baseline.
            controller.emit_delay(0, 1, 300.0)
            controller.step()
            controller.emit_delay(0, 1, 600.0)
            controller.step()
            controller.emit_delay(0, 1, 0.0)  # the incident clears
            controller.step()
            served = [host.query("prod", s, t, d) for s, t, d in queries]
            assert served == expected

    def test_rebuild_downgrades_to_clone_swap_without_a_spec(
        self, host, small_grid, tmp_path
    ):
        # A snapshot-restored deployment has no buildable rebuild spec.
        snapshot = host.snapshot("prod", tmp_path / "snap")
        host.swap("prod", f"snapshot:{snapshot}")
        shadow = small_grid.copy()
        with TrafficController(
            host, "prod", policy=FixedPolicy(ACTION_REBUILD)
        ) as controller:
            base = shadow.weight(0, 1)
            shadow.set_weight(0, 1, base.shift(240.0))
            controller.stream.emit(0, 1, base.shift(240.0), event_at=0.0)
            report = controller.step()
            assert report is not None
            assert report.action == ACTION_CLONE_SWAP
            assert "downgraded" in report.reason
            oracle = create_engine("td-h2h", shadow.copy())
            for source, target, departure in _workload(shadow, count=8, seed=93):
                assert (
                    host.query("prod", source, target, departure)
                    == oracle.query(source, target, departure).cost
                )

    def test_rebuild_after_clone_swap_keeps_build_options(self, small_grid):
        """clone_swap must not degrade the deployment's recorded spec.

        The clone is swapped in as a ready engine; without the spec carried
        through, a later rebuild would silently drop options such as
        ``?max_points=none`` and build a lossy engine whose answers drift
        from the fresh-rebuild oracle.
        """
        spec = "td-h2h?max_points=none"
        shadow = small_grid.copy()
        with EngineHost(max_batch_size=32, max_wait_ms=1.0) as host:
            host.deploy("prod", spec, small_grid.copy())
            base = shadow.weight(0, 1)
            with TrafficController(
                host, "prod", policy=FixedPolicy(ACTION_CLONE_SWAP)
            ) as controller:
                shadow.set_weight(0, 1, base.shift(120.0))
                controller.stream.emit(0, 1, base.shift(120.0), event_at=0.0)
                controller.step()
            assert host.deployment("prod").spec == spec
            # A fresh controller rebuilds with the full spec intact.
            with TrafficController(
                host, "prod", policy=FixedPolicy(ACTION_REBUILD)
            ) as controller:
                shadow.set_weight(0, 1, base.shift(240.0))
                controller.stream.emit(0, 1, base.shift(240.0), event_at=0.0)
                report = controller.step()
            assert report is not None and report.action == ACTION_REBUILD
            rebuilt = host.deployment("prod").engine
            assert rebuilt.index.max_points is None
            oracle = create_engine(spec, shadow.copy())
            for source, target, departure in _workload(shadow, count=8, seed=95):
                assert (
                    host.query("prod", source, target, departure)
                    == oracle.query(source, target, departure).cost
                )

    def test_patch_downgrades_when_engine_cannot_update(self, small_grid):
        with EngineHost(max_batch_size=32, max_wait_ms=1.0) as host:
            host.deploy("ref", "td-dijkstra", small_grid.copy())
            with TrafficController(
                host, "ref", policy=FixedPolicy(ACTION_PATCH)
            ) as controller:
                decision = controller._downgrade_locked(
                    PolicyDecision(ACTION_PATCH, "test")
                )
                assert decision.action == ACTION_CLONE_SWAP
                assert "downgraded" in decision.reason


class TestStaleness:
    def test_staleness_measured_from_event_time(self, host):
        clock = FakeClock(start=1000.0)
        with TrafficController(
            host, "prod", policy=FixedPolicy(ACTION_PATCH), clock=clock
        ) as controller:
            controller.emit_delay(0, 1, 120.0)  # stamped at t=1000
            clock.advance(10.0)
            report = controller.step()
            assert report is not None
            assert report.staleness_p50_s == pytest.approx(10.0)
            assert report.staleness_max_s == pytest.approx(10.0)
            stats = controller.stats()
            assert stats.staleness_p50_s == pytest.approx(10.0)
            assert stats.staleness_p99_s == pytest.approx(10.0)
            assert stats.staleness_max_s == pytest.approx(10.0)

    def test_staleness_metrics_published(self, small_grid):
        obs = Observability()
        with EngineHost(max_batch_size=32, max_wait_ms=1.0, obs=obs) as host:
            host.deploy("prod", "td-h2h", small_grid.copy())
            with TrafficController(
                host, "prod", policy=FixedPolicy(ACTION_PATCH)
            ) as controller:
                controller.emit_delay(0, 1, 60.0)
                controller.step()
            text = host.metrics_text()
            assert "repro_traffic_staleness_seconds" in text
            assert (
                'repro_traffic_actions_total{deployment="prod",action="patch"} 1'
                in text
            )
            assert "repro_traffic_updates_total" in text
            kinds = [event.kind for event in obs.events.events()]
            assert "traffic.ingest" in kinds
            assert "traffic.action" in kinds


class TestBackgroundLoop:
    def test_loop_applies_updates_without_manual_steps(self, host, small_grid):
        with TrafficController(
            host, "prod", policy=FixedPolicy(ACTION_PATCH)
        ) as controller:
            controller.start(interval_seconds=0.01)
            base = small_grid.weight(0, 1)
            controller.stream.emit(0, 1, base.shift(180.0))
            deadline = time.monotonic() + 10.0
            while controller.stats().steps == 0:
                assert time.monotonic() < deadline, "loop never applied the batch"
                time.sleep(0.01)
            controller.stop()
            live = host.deployment("prod").engine.graph
            assert live.weight(0, 1).allclose(base.shift(180.0))

    def test_start_is_idempotent_and_restartable(self, host):
        with TrafficController(host, "prod") as controller:
            controller.start(interval_seconds=0.05)
            first = controller._loop_thread
            controller.start(interval_seconds=0.05)  # no second thread
            assert controller._loop_thread is first
            controller.stop()
            controller.start(interval_seconds=0.05)  # restartable after stop
        with pytest.raises(TrafficControlError):
            controller.start()  # but never after close
