"""Dirty-vertex estimation vs what ``apply_edge_updates`` actually touches.

The controller's policy decisions hang off :func:`estimate_dirty_vertices` —
a value-blind simulation of the incremental repair's propagation.  Two
properties pin it to the real thing across graph families:

* **Soundness** (always): the estimate is an upper bound on
  ``UpdateReport.num_dirty_vertices`` for *any* update, because the repair
  prunes propagation when recomputed labels come out unchanged and the
  estimate never prunes.
* **Tightness** (saturating decreases): dropping the changed edges to
  near-zero cost pulls them onto almost every shortest path through their
  cone, defeating nearly all pruning — the real count must land within a
  small structural slack of the estimate, so the policy's dirty fraction is
  an honest signal rather than a vacuous bound.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TDTreeIndex
from repro.datasets.catalog import load_dataset
from repro.graph import grid_network, random_geometric_network
from repro.traffic import estimate_dirty_vertices

GRAPHS = {
    "grid": lambda: grid_network(5, 5, num_points=3, seed=3),
    "planar": lambda: random_geometric_network(60, num_points=3, seed=29),
    "cal_sample": lambda: load_dataset("CAL", num_points=3),
}

#: One built index per graph family, reused (and repaired back to baseline)
#: across hypothesis examples — rebuilding per example would dominate runtime.
_INDEXES: dict[str, TDTreeIndex] = {}


def _index_for(family: str) -> TDTreeIndex:
    index = _INDEXES.get(family)
    if index is None:
        index = TDTreeIndex.build(
            GRAPHS[family]().copy(), strategy="basic", max_points=None
        )
        _INDEXES[family] = index
    return index


def _apply_and_restore(index, edges, delta):
    """Apply a uniform shift to ``edges``, report, then restore baselines."""
    baselines = {(u, v): index.graph.weight(u, v) for u, v in edges}
    report = index.update_edges(
        {edge: weight.shift(delta) for edge, weight in baselines.items()}
    )
    index.update_edges(baselines)
    return report


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
@pytest.mark.parametrize("family", sorted(GRAPHS))
def test_estimate_is_a_sound_upper_bound(family, data):
    index = _index_for(family)
    all_edges = sorted({(u, v) for u, v, _ in index.graph.edges()})
    count = data.draw(st.integers(min_value=1, max_value=12), label="edges")
    edges = data.draw(
        st.lists(
            st.sampled_from(all_edges),
            min_size=count,
            max_size=count,
            unique=True,
        ),
        label="edge set",
    )
    delta = data.draw(
        st.floats(min_value=0.5, max_value=3600.0, allow_nan=False),
        label="delta",
    )
    estimate = estimate_dirty_vertices(index.tree, edges)
    report = _apply_and_restore(index, edges, delta)
    assert report.num_dirty_vertices <= estimate
    assert estimate <= index.graph.num_vertices


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("count", [1, 3, 8])
def test_estimate_tight_under_saturating_decrease(family, count):
    """Near-zero costs defeat pruning: the bound is tight, not vacuous.

    A handful of cone-boundary vertices may still prune (their labels
    happen not to route through the cheapened edges), hence the small
    slack instead of strict equality.
    """
    index = _index_for(family)
    all_edges = sorted({(u, v) for u, v, _ in index.graph.edges()})
    edges = all_edges[:: max(1, len(all_edges) // count)][:count]
    estimate = estimate_dirty_vertices(index.tree, edges)
    baselines = {(u, v): index.graph.weight(u, v) for u, v in edges}
    report = index.update_edges(
        {
            edge: weight.shift(-0.999 * min(weight.costs))
            for edge, weight in baselines.items()
        }
    )
    index.update_edges(baselines)
    actual = report.num_dirty_vertices
    assert actual <= estimate
    assert actual >= estimate - max(3, len(edges))


def test_estimate_of_nothing_is_zero(small_tree):
    assert estimate_dirty_vertices(small_tree, []) == 0


def test_estimate_matches_controller_observation_path(small_grid):
    """The exact call shape the controller uses (tree attr via the index)."""
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="basic", max_points=None
    )
    edges = sorted({(u, v) for u, v, _ in index.graph.edges()})[:4]
    estimate = estimate_dirty_vertices(index.tree, edges)
    assert 1 <= estimate <= index.graph.num_vertices
