"""Shared contract tests for the sync and async retry helpers.

``retry_submit`` and ``aretry_submit`` must be the *same* policy over two
call styles — identical backoff schedule, identical jitter for the same
seed, identical retry/raise semantics — so every test here runs against
both through one driver abstraction: the sync driver records sleeps via a
:class:`FakeClock`, the async driver via an injected recording coroutine.
A behaviour difference between the twins fails the same parametrized test
twice, pointing straight at the diverging variant.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

import pytest

from repro.exceptions import AdmissionRejectedError, ServiceClosedError
from repro.serving import aretry_submit, backoff_delays, retry_submit
from repro.utils.timing import FakeClock


class SyncDriver:
    """Run ``retry_submit`` with a sleep-recording fake clock."""

    name = "sync"

    def __init__(self) -> None:
        self.sleeps: list[float] = []
        outer = self

        class _RecordingClock(FakeClock):
            def sleep(self, seconds: float) -> None:
                outer.sleeps.append(seconds)
                super().sleep(seconds)

        self._clock = _RecordingClock()

    def run(self, submit: Callable[[], Any], **kwargs: Any) -> Any:
        return retry_submit(submit, clock=self._clock, **kwargs)


class AsyncDriver:
    """Run ``aretry_submit`` with a sleep-recording coroutine."""

    name = "async"

    def __init__(self) -> None:
        self.sleeps: list[float] = []

    def run(self, submit: Callable[[], Any], **kwargs: Any) -> Any:
        async def _sleep(seconds: float) -> None:
            self.sleeps.append(seconds)

        async def _submit() -> Any:
            return submit()

        async def _main() -> Any:
            return await aretry_submit(_submit, sleep=_sleep, **kwargs)

        return asyncio.run(_main())


@pytest.fixture(params=[SyncDriver, AsyncDriver], ids=["sync", "async"])
def driver(request: pytest.FixtureRequest) -> Any:
    return request.param()


class _FailThenSucceed:
    def __init__(self, failures: int, error: BaseException) -> None:
        self.remaining = failures
        self.error = error
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return "answer"


class TestSharedRetryContract:
    def test_first_try_success_never_sleeps(self, driver):
        target = _FailThenSucceed(0, ServiceClosedError())
        assert driver.run(target) == "answer"
        assert target.calls == 1
        assert driver.sleeps == []

    def test_sleeps_match_the_published_schedule(self, driver):
        target = _FailThenSucceed(3, ServiceClosedError())
        assert driver.run(target, attempts=8, seed=11) == "answer"
        assert target.calls == 4
        expected = list(backoff_delays(8, seed=11)[:3])
        assert driver.sleeps == expected

    def test_exhaustion_raises_the_last_error(self, driver):
        target = _FailThenSucceed(99, ServiceClosedError())
        with pytest.raises(ServiceClosedError):
            driver.run(target, attempts=3, seed=5)
        assert target.calls == 3
        assert driver.sleeps == list(backoff_delays(3, seed=5))

    def test_zero_retry_edge_single_attempt(self, driver):
        target = _FailThenSucceed(1, ServiceClosedError())
        with pytest.raises(ServiceClosedError):
            driver.run(target, attempts=1)
        assert target.calls == 1
        assert driver.sleeps == []

    def test_attempts_below_one_rejected(self, driver):
        with pytest.raises(ValueError, match="at least 1"):
            driver.run(lambda: "never", attempts=0)

    def test_max_delay_bound_honored(self, driver):
        target = _FailThenSucceed(6, ServiceClosedError())
        driver.run(
            target, attempts=8, base_delay_ms=1.0, max_delay_ms=2.0, seed=0
        )
        # Every sleep stays under the cap (jitter only shrinks delays).
        assert driver.sleeps
        assert all(s < 2.0 / 1000.0 for s in driver.sleeps)

    def test_deterministic_jitter_same_seed_same_sleeps(self, driver):
        first = type(driver)()
        second = type(driver)()
        for d in (first, second):
            with pytest.raises(ServiceClosedError):
                d.run(
                    _FailThenSucceed(99, ServiceClosedError()),
                    attempts=5,
                    seed=42,
                )
        assert first.sleeps == second.sleeps

    def test_non_retryable_error_propagates_immediately(self, driver):
        target = _FailThenSucceed(1, KeyError("boom"))
        with pytest.raises(KeyError):
            driver.run(target, attempts=8)
        assert target.calls == 1
        assert driver.sleeps == []

    def test_retry_on_extends_the_retryable_set(self, driver):
        error = AdmissionRejectedError(4, "shed")
        target = _FailThenSucceed(2, error)
        result = driver.run(
            target,
            attempts=4,
            retry_on=(ServiceClosedError, AdmissionRejectedError),
        )
        assert result == "answer"
        assert target.calls == 3

    def test_on_retry_callback_sees_each_attempt(self, driver):
        seen: list[tuple[int, str]] = []
        target = _FailThenSucceed(2, ServiceClosedError())
        driver.run(
            target,
            attempts=5,
            on_retry=lambda attempt, exc: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [
            (0, "ServiceClosedError"),
            (1, "ServiceClosedError"),
        ]


class TestAsyncOnly:
    def test_default_sleep_is_asyncio(self):
        """Without an injected sleep the helper awaits ``asyncio.sleep``."""
        attempts: list[int] = []

        async def _submit() -> str:
            attempts.append(1)
            if len(attempts) < 2:
                raise ServiceClosedError()
            return "ok"

        async def _main() -> str:
            return await aretry_submit(
                _submit, attempts=3, base_delay_ms=0.01, max_delay_ms=0.01
            )

        assert asyncio.run(_main()) == "ok"
        assert len(attempts) == 2

    def test_submit_is_called_fresh_each_attempt(self):
        """The coroutine factory is re-invoked — never re-awaited."""
        coroutines: list[object] = []

        async def _make() -> str:
            if len(coroutines) < 3:
                raise ServiceClosedError()
            return "ok"

        def _factory() -> Any:
            coroutine = _make()
            coroutines.append(coroutine)
            return coroutine

        async def _sleep(seconds: float) -> None:
            return None

        async def _main() -> str:
            return await aretry_submit(_factory, attempts=5, sleep=_sleep)

        assert asyncio.run(_main()) == "ok"
        assert len(coroutines) == 3
        assert len(set(map(id, coroutines))) == 3
