"""Admission control, deadlines, and the shared retry helper.

The admission queue bounds how much work a :class:`QueryService` will hold
(``block`` = backpressure, ``shed`` = typed rejection), deadlines bound how
long any caller can be kept waiting, and :func:`retry_submit` is the one
deterministic backoff loop every serving-layer caller shares.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ServiceClosedError,
)
from repro.serving import (
    ADMISSION_POLICIES,
    ADMIT_BLOCK,
    ADMIT_SHED,
    QueryService,
    backoff_delays,
    retry_submit,
)


# ----------------------------------------------------------------------
# Backoff schedule / retry helper (no service needed)
# ----------------------------------------------------------------------
class TestBackoffDelays:
    def test_deterministic_across_calls(self):
        assert backoff_delays(8, seed=7) == backoff_delays(8, seed=7)

    def test_seed_changes_jitter_not_shape(self):
        a = backoff_delays(6, seed=1)
        b = backoff_delays(6, seed=2)
        assert a != b
        assert len(a) == len(b) == 5

    def test_delays_double_up_to_the_cap(self):
        delays = backoff_delays(8, base_delay_ms=1.0, max_delay_ms=4.0, seed=0)
        # Jitter scales each delay into [0.5x, 1.0x) of the nominal value.
        nominal_ms = [1.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0]
        for got, nominal in zip(delays, nominal_ms):
            assert nominal * 0.5 / 1000.0 <= got < nominal / 1000.0

    def test_single_attempt_sleeps_never(self):
        assert backoff_delays(1) == ()
        assert backoff_delays(0) == ()


class TestRetrySubmit:
    def test_first_success_returns_immediately(self):
        calls = []
        assert retry_submit(lambda: calls.append(1) or 42) == 42
        assert calls == [1]

    def test_retries_only_listed_errors(self):
        with pytest.raises(ValueError):
            retry_submit(lambda: (_ for _ in ()).throw(ValueError("boom")))

    def test_exhaustion_reraises_the_last_error(self):
        attempts = []

        def always_closed():
            attempts.append(len(attempts))
            raise ServiceClosedError("submit")

        with pytest.raises(ServiceClosedError):
            retry_submit(always_closed, attempts=3, base_delay_ms=0.0)
        assert len(attempts) == 3

    def test_succeeds_after_transient_failures(self):
        state = {"failures": 2}

        def flaky():
            if state["failures"] > 0:
                state["failures"] -= 1
                raise ServiceClosedError("submit")
            return "ok"

        notified = []
        result = retry_submit(
            flaky,
            base_delay_ms=0.0,
            on_retry=lambda attempt, exc: notified.append((attempt, type(exc))),
        )
        assert result == "ok"
        assert notified == [(0, ServiceClosedError), (1, ServiceClosedError)]

    def test_custom_retry_on_covers_shedding(self):
        state = {"shed": 1}

        def shed_once():
            if state["shed"]:
                state["shed"] = 0
                raise AdmissionRejectedError(8)
            return 1.5

        assert (
            retry_submit(
                shed_once,
                retry_on=(ServiceClosedError, AdmissionRejectedError),
                base_delay_ms=0.0,
            )
            == 1.5
        )

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry_submit(lambda: 1, attempts=0)


# ----------------------------------------------------------------------
# Admission policies on a live service
# ----------------------------------------------------------------------
class TestAdmission:
    def test_policy_names_are_the_public_constants(self):
        assert ADMISSION_POLICIES == (ADMIT_BLOCK, ADMIT_SHED)

    def test_unknown_policy_rejected_at_construction(self, approx_index):
        with pytest.raises(ValueError):
            QueryService(approx_index, admission_policy="drop-everything")

    def test_invalid_bounds_rejected(self, approx_index):
        with pytest.raises(ValueError):
            QueryService(approx_index, max_pending=0)
        with pytest.raises(ValueError):
            QueryService(approx_index, admission_timeout_ms=-1.0)
        with pytest.raises(ValueError):
            QueryService(approx_index, default_deadline_ms=0.0)

    def test_shed_policy_raises_typed_error_at_capacity(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            cache_size=0,
            max_pending=2,
            admission_policy="shed",
        ) as svc:
            first = svc.submit(0, 24, 0.0)
            svc.submit(1, 23, 0.0)
            with pytest.raises(AdmissionRejectedError) as excinfo:
                svc.submit(2, 22, 0.0)
            assert excinfo.value.max_pending == 2
            assert excinfo.value.policy == "shed"
            svc.flush()
            # Capacity freed by the flush: admission succeeds again.
            readmitted = svc.submit(2, 22, 0.0)
            svc.flush()
            assert first.result(5.0) > 0.0
            assert readmitted.result(5.0) > 0.0
            stats = svc.stats()
            assert stats.shed == 1
            assert stats.queries_answered == 3

    def test_block_policy_waits_for_capacity(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            cache_size=0,
            max_pending=1,
            admission_policy="block",
        ) as svc:
            svc.submit(0, 24, 0.0)
            admitted = threading.Event()

            def blocked_submitter():
                svc.submit(1, 23, 0.0)
                admitted.set()

            thread = threading.Thread(target=blocked_submitter, daemon=True)
            thread.start()
            # The submitter must actually block (capacity is full)...
            assert not admitted.wait(0.05)
            svc.flush()  # ...and proceed once the flush frees the slot.
            assert admitted.wait(5.0)
            thread.join(timeout=5.0)
            svc.flush()
            assert svc.stats().shed == 0

    def test_block_policy_sheds_past_the_admission_timeout(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            cache_size=0,
            max_pending=1,
            admission_policy="block",
            admission_timeout_ms=30.0,
        ) as svc:
            svc.submit(0, 24, 0.0)
            started = time.perf_counter()
            with pytest.raises(AdmissionRejectedError) as excinfo:
                svc.submit(1, 23, 0.0)
            waited = time.perf_counter() - started
            assert excinfo.value.policy == "block"
            assert waited >= 0.025
            assert svc.stats().shed == 1

    def test_cache_hits_bypass_admission(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            max_pending=1,
            admission_policy="shed",
        ) as svc:
            warm = svc.submit(0, 24, 0.0)
            svc.flush()
            warm.result(5.0)
            svc.submit(1, 23, 0.0)  # occupies the only slot
            # A cached answer consumes no worker capacity: never shed.
            hit = svc.submit(0, 24, 0.0)
            assert hit.done()
            assert hit.result() == warm.result()

    def test_close_wakes_blocked_admission_waiters(self, approx_index):
        svc = QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            cache_size=0,
            max_pending=1,
            admission_policy="block",
        )
        svc.submit(0, 24, 0.0)
        outcome: list[BaseException] = []

        def blocked_submitter():
            try:
                svc.submit(1, 23, 0.0)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                outcome.append(exc)

        thread = threading.Thread(target=blocked_submitter, daemon=True)
        thread.start()
        time.sleep(0.05)
        svc.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(outcome) == 1
        assert isinstance(outcome[0], ServiceClosedError)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_must_be_positive(self, approx_index):
        with QueryService(approx_index) as svc:
            with pytest.raises(ValueError):
                svc.submit(0, 24, 0.0, deadline_ms=0.0)

    def test_answer_beats_a_generous_deadline(self, approx_index):
        with QueryService(approx_index, max_batch_size=4, max_wait_ms=5.0) as svc:
            future = svc.submit(0, 24, 0.0, deadline_ms=30_000.0)
            svc.flush()
            assert future.result(5.0) == approx_index.query(0, 24, 0.0).cost
            assert svc.stats().deadline_expired == 0

    def test_consumer_unblocks_at_deadline_even_with_wedged_worker(
        self, approx_index
    ):
        with QueryService(
            approx_index, max_batch_size=64, max_wait_ms=60_000.0, cache_size=0
        ) as svc:
            # Wedge the worker: the flush path sleeps far past the deadline.
            original = svc._batch_compute

            def wedged(sources, targets, departures):
                time.sleep(0.5)
                return original(sources, targets, departures)

            svc._batch_compute = wedged
            future = svc.submit(0, 24, 0.0, deadline_ms=40.0)
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result()
            elapsed = time.perf_counter() - started
            assert elapsed < 0.4  # unblocked by the deadline, not the worker
            assert excinfo.value.deadline_ms == 40.0

    def test_flusher_expires_overdue_queries_without_a_consumer(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,  # the batch itself would wait forever
            cache_size=0,
            max_pending=1,
            admission_policy="shed",
            default_deadline_ms=20.0,
        ) as svc:
            abandoned = svc.submit(0, 24, 0.0)  # nobody calls result()
            deadline = time.perf_counter() + 5.0
            while not abandoned.done() and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert isinstance(abandoned.exception(1.0), DeadlineExceededError)
            # The expiry freed the admission slot: the next submit is not shed.
            svc.submit(1, 23, 0.0)
            stats = svc.stats()
            assert stats.deadline_expired == 1
            assert stats.shed == 0

    def test_default_deadline_applies_when_submit_passes_none(self, approx_index):
        with QueryService(
            approx_index,
            max_batch_size=64,
            max_wait_ms=60_000.0,
            cache_size=0,
            default_deadline_ms=25.0,
        ) as svc:
            future = svc.submit(0, 24, 0.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result()
            assert excinfo.value.deadline_ms == 25.0

    def test_late_batch_cannot_overwrite_an_expired_future(self, approx_index):
        with QueryService(
            approx_index, max_batch_size=64, max_wait_ms=60_000.0, cache_size=0
        ) as svc:
            future = svc.submit(0, 24, 0.0, deadline_ms=10.0)
            with pytest.raises(DeadlineExceededError):
                future.result()
            svc.flush()  # the batch settles late; first settlement wins
            with pytest.raises(DeadlineExceededError):
                future.result(1.0)
