"""ServiceFuture edge paths: settle-once semantics, callbacks, deadlines.

These are the paths a load test rarely exercises but an incident always
does: callbacks added after settlement, callbacks that raise, racing
settlements, and futures whose deadline elapsed before anyone looked.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import DeadlineExceededError
from repro.serving.service import ServiceFuture


def _expired_future(deadline_ms: float = 5.0) -> ServiceFuture:
    """A future whose deadline is already in the past, unsettled."""
    future = ServiceFuture()
    future._arm_deadline(time.perf_counter() - 0.001, deadline_ms, None)
    return future


class TestSettleOnce:
    def test_result_wins_over_late_exception(self):
        future = ServiceFuture()
        future.set_result(7.0)
        future.set_exception(RuntimeError("late"))
        assert future.result() == 7.0
        assert future.exception() is None

    def test_exception_wins_over_late_result(self):
        future = ServiceFuture()
        error = RuntimeError("first")
        future.set_exception(error)
        future.set_result(7.0)
        assert future.exception() is error

    def test_racing_settlements_produce_exactly_one_outcome(self):
        # Many threads race set_result/set_exception on the same future; the
        # observed outcome must be a single winner, not a torn state.
        for trial in range(20):
            future = ServiceFuture()
            barrier = threading.Barrier(8)

            def settle(i: int, fut: ServiceFuture = future) -> None:
                barrier.wait()
                if i % 2:
                    fut.set_result(float(i))
                else:
                    fut.set_exception(RuntimeError(str(i)))

            threads = [
                threading.Thread(target=settle, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            assert future.done()
            error = future.exception()
            if error is None:
                assert future.result() == float(int(future.result()))
            else:
                assert isinstance(error, RuntimeError)
            # The winner is stable on every subsequent read.
            assert future.exception() is error


class TestCallbacks:
    def test_callback_added_after_settlement_runs_immediately(self):
        future = ServiceFuture()
        future.set_result(1.0)
        seen: list[ServiceFuture] = []
        future.add_done_callback(seen.append)
        assert seen == [future]

    def test_raising_callback_does_not_poison_the_others(self):
        future = ServiceFuture()
        order: list[str] = []

        def bad(_fut: ServiceFuture) -> None:
            order.append("bad")
            raise RuntimeError("callback bug")

        future.add_done_callback(bad)
        future.add_done_callback(lambda _fut: order.append("good"))
        future.set_result(2.0)  # must not raise out of the settling thread
        assert order == ["bad", "good"]
        # And a post-settlement raising callback doesn't break add itself.
        future.add_done_callback(bad)
        assert order == ["bad", "good", "bad"]

    def test_callbacks_run_in_registration_order(self):
        future = ServiceFuture()
        order: list[int] = []
        for i in range(5):
            future.add_done_callback(lambda _fut, i=i: order.append(i))
        future.set_result(0.0)
        assert order == [0, 1, 2, 3, 4]

    def test_callbacks_fire_exactly_once_under_racing_settlements(self):
        for trial in range(20):
            future = ServiceFuture()
            fired: list[str] = []
            future.add_done_callback(lambda _fut: fired.append("cb"))
            barrier = threading.Barrier(4)

            def settle(i: int, fut: ServiceFuture = future) -> None:
                barrier.wait()
                fut.set_exception(RuntimeError(str(i)))

            threads = [
                threading.Thread(target=settle, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            assert fired == ["cb"]

    def test_callback_sees_the_settled_future(self):
        future = ServiceFuture()
        observed: list[float] = []
        future.add_done_callback(lambda fut: observed.append(fut.result()))
        future.set_result(3.5)
        assert observed == [3.5]


class TestElapsedDeadline:
    def test_result_raises_deadline_error_without_blocking(self):
        future = _expired_future(deadline_ms=12.0)
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError) as excinfo:
            future.result()  # no timeout argument: would block forever if buggy
        assert time.perf_counter() - started < 0.5
        assert excinfo.value.deadline_ms == 12.0

    def test_exception_returns_deadline_error_without_blocking(self):
        future = _expired_future()
        error = future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert future.done()

    def test_expiry_fires_callbacks(self):
        future = _expired_future()
        seen: list[bool] = []
        future.add_done_callback(lambda fut: seen.append(fut.done()))
        with pytest.raises(DeadlineExceededError):
            future.result()
        assert seen == [True]

    def test_expire_hook_runs_once_even_if_both_sides_expire(self):
        hook_calls: list[float] = []
        future = ServiceFuture()
        future._arm_deadline(time.perf_counter() - 0.001, 5.0, hook_calls.append)
        future._expire()  # flusher-side expiry
        future._expire()  # consumer-side expiry loses the settle race
        assert hook_calls == [5.0]  # once, carrying the deadline that fired

    def test_settled_future_ignores_its_elapsed_deadline(self):
        future = ServiceFuture()
        future._arm_deadline(time.perf_counter() + 0.005, 5.0, None)
        future.set_result(9.0)
        time.sleep(0.01)  # deadline passes after settlement
        assert future.result() == 9.0
        assert future.exception() is None
