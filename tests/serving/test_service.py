"""Behavioural tests for the micro-batching :class:`QueryService`.

The service must never change answers — only their delivery: every cost it
returns equals the corresponding ``index.query`` call bit for bit (the batch
engine guarantees it), across flush triggers, cache states, threads and
index updates.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import TDGraph, TDTreeIndex
from repro.exceptions import DisconnectedQueryError
from repro.functions import PiecewiseLinearFunction
from repro.serving import QueryService


def _workload(graph, count=30, seed=42):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(0.0, 86_400.0)),
        )
        for _ in range(count)
    ]


@pytest.fixture()
def service(approx_index):
    with QueryService(approx_index, max_batch_size=8, max_wait_ms=5.0) as svc:
        yield svc


# ----------------------------------------------------------------------
# Correctness of delivery
# ----------------------------------------------------------------------
def test_results_match_scalar_queries(approx_index, service):
    workload = _workload(approx_index.graph)
    futures = [service.submit(s, t, d) for s, t, d in workload]
    service.flush()
    got = [f.result(timeout=10) for f in futures]
    expected = [approx_index.query(s, t, d).cost for s, t, d in workload]
    assert got == expected


def test_full_batch_flushes_without_waiting(approx_index):
    with QueryService(approx_index, max_batch_size=4, max_wait_ms=60_000.0) as svc:
        workload = _workload(approx_index.graph, count=4, seed=1)
        futures = [svc.submit(s, t, d) for s, t, d in workload]
        # max_wait is a minute: only the size trigger can have flushed these.
        got = [f.result(timeout=10) for f in futures]
        assert got == [approx_index.query(s, t, d).cost for s, t, d in workload]
        assert svc.stats().num_batches == 1


def test_max_wait_flushes_a_lone_query(approx_index):
    with QueryService(approx_index, max_batch_size=1024, max_wait_ms=10.0) as svc:
        (s, t, d) = _workload(approx_index.graph, count=1, seed=2)[0]
        future = svc.submit(s, t, d)
        # No explicit flush: the background deadline must deliver the answer.
        assert future.result(timeout=10) == approx_index.query(s, t, d).cost


def test_blocking_query_wrapper(approx_index):
    with QueryService(approx_index, max_batch_size=64, max_wait_ms=1.0) as svc:
        s, t, d = _workload(approx_index.graph, count=1, seed=3)[0]
        assert svc.query(s, t, d) == approx_index.query(s, t, d).cost


def test_same_vertex_query(service, approx_index):
    vertex = next(iter(approx_index.graph.vertices()))
    assert service.query(vertex, vertex, 0.0) == 0.0


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def test_exact_cache_hit(approx_index, service):
    s, t, d = _workload(approx_index.graph, count=1, seed=5)[0]
    first = service.query(s, t, d)
    before = service.stats()
    second = service.submit(s, t, d).result(timeout=1)
    after = service.stats()
    assert second == first
    assert after.cache_hits == before.cache_hits + 1
    assert after.num_batches == before.num_batches  # hit never touched the engine


def test_departure_bucketing_trades_exactness_for_hits(approx_index):
    with QueryService(
        approx_index, max_batch_size=4, max_wait_ms=5.0, bucket_seconds=3_600.0
    ) as svc:
        s, t, _ = _workload(approx_index.graph, count=1, seed=6)[0]
        first = svc.query(s, t, 7_200.0)
        # Same hour bucket: served from cache with the earlier answer.
        assert svc.submit(s, t, 7_500.0).result(timeout=1) == first
        assert svc.stats().cache_hits == 1
        # Different bucket: goes back to the engine.
        other = svc.query(s, t, 50_000.0)
        assert other == approx_index.query(s, t, 50_000.0).cost


def test_cache_is_lru_bounded(approx_index):
    with QueryService(
        approx_index, max_batch_size=1, max_wait_ms=5.0, cache_size=2
    ) as svc:
        workload = _workload(approx_index.graph, count=4, seed=7)
        for s, t, d in workload:
            svc.query(s, t, d)
        assert svc.stats().cache_entries <= 2


def test_cache_disabled(approx_index):
    with QueryService(
        approx_index, max_batch_size=1, max_wait_ms=5.0, cache_size=0
    ) as svc:
        s, t, d = _workload(approx_index.graph, count=1, seed=8)[0]
        svc.query(s, t, d)
        svc.query(s, t, d)
        stats = svc.stats()
        assert stats.cache_hits == 0
        assert stats.cache_entries == 0
        assert stats.num_batches == 2


# ----------------------------------------------------------------------
# Update integration
# ----------------------------------------------------------------------
def test_edge_update_invalidates_cache_and_results(small_grid):
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=16
    )
    with QueryService(index, max_batch_size=8, max_wait_ms=5.0) as svc:
        workload = _workload(index.graph, count=12, seed=9)
        for s, t, d in workload:
            svc.query(s, t, d)
        assert svc.stats().cache_entries > 0

        u, v, weight = next(iter(index.graph.edges()))
        index.update_edge(u, v, weight.shift(400.0))

        stats = svc.stats()
        assert stats.cache_invalidations == 1
        assert stats.cache_entries == 0
        # Post-update answers come from the repaired index, not stale cache.
        for s, t, d in workload:
            assert svc.query(s, t, d) == index.query(s, t, d).cost


def test_close_unregisters_invalidation_hook(approx_index):
    before = len(approx_index._invalidation_hooks)
    svc = QueryService(approx_index, max_batch_size=4, max_wait_ms=1.0)
    assert len(approx_index._invalidation_hooks) == before + 1
    svc.close()
    assert len(approx_index._invalidation_hooks) == before


def test_dropped_service_is_garbage_collected(approx_index):
    """A service abandoned without close() must not be pinned by its thread or
    its index hook; the dead hook prunes itself on the next invalidation."""
    import gc
    import weakref

    before = len(approx_index._invalidation_hooks)
    svc = QueryService(approx_index, max_batch_size=4, max_wait_ms=1.0)
    ref = weakref.ref(svc)
    del svc
    deadline = time.time() + 3.0
    while ref() is not None and time.time() < deadline:
        gc.collect()
        time.sleep(0.05)  # let the flusher drop its bounded-wait strong ref
    assert ref() is None
    approx_index.notify_invalidation()  # dead hook unregisters itself
    assert len(approx_index._invalidation_hooks) == before


# ----------------------------------------------------------------------
# Failure delivery
# ----------------------------------------------------------------------
def test_disconnected_query_fails_only_its_future():
    graph = TDGraph()
    graph.add_bidirectional_edge(0, 1, PiecewiseLinearFunction.constant(10.0))
    graph.add_bidirectional_edge(2, 3, PiecewiseLinearFunction.constant(10.0))
    index = TDTreeIndex.build(graph, strategy="basic", validate=False)
    with QueryService(index, max_batch_size=16, max_wait_ms=5.0) as svc:
        good = svc.submit(0, 1, 0.0)
        bad = svc.submit(0, 3, 0.0)
        also_good = svc.submit(2, 3, 0.0)
        svc.flush()
        assert good.result(timeout=10) == 10.0
        assert also_good.result(timeout=10) == 10.0
        with pytest.raises(DisconnectedQueryError):
            bad.result(timeout=10)


# ----------------------------------------------------------------------
# Lifecycle, stats, concurrency
# ----------------------------------------------------------------------
def test_submit_after_close_raises(approx_index):
    from repro.exceptions import ReproError, ServiceClosedError

    svc = QueryService(approx_index, max_batch_size=4, max_wait_ms=1.0)
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit(0, 1, 0.0)
    with pytest.raises(ServiceClosedError):
        svc.flush()
    # The dedicated error stays catchable through both legacy RuntimeError
    # handlers and the library-wide base class.
    assert issubclass(ServiceClosedError, RuntimeError)
    assert issubclass(ServiceClosedError, ReproError)
    svc.close()  # idempotent


def test_close_reports_drained_queries(approx_index):
    svc = QueryService(approx_index, max_batch_size=1024, max_wait_ms=60_000.0)
    s, t, d = _workload(approx_index.graph, count=1, seed=21)[0]
    future = svc.submit(s, t, d)
    assert svc.close() == 1
    assert future.result(timeout=1) == approx_index.query(s, t, d).cost
    assert svc.close() == 0


def test_close_flushes_pending(approx_index):
    svc = QueryService(approx_index, max_batch_size=1024, max_wait_ms=60_000.0)
    s, t, d = _workload(approx_index.graph, count=1, seed=10)[0]
    future = svc.submit(s, t, d)
    svc.close()
    assert future.result(timeout=1) == approx_index.query(s, t, d).cost


def test_stats_shape(approx_index):
    with QueryService(approx_index, max_batch_size=5, max_wait_ms=5.0) as svc:
        workload = _workload(approx_index.graph, count=10, seed=11)
        futures = [svc.submit(s, t, d) for s, t, d in workload]
        svc.flush()
        [f.result(timeout=10) for f in futures]
        stats = svc.stats()
        assert stats.queries_submitted == 10
        assert stats.queries_answered == 10
        assert stats.num_batches >= 2
        assert 0.0 < stats.avg_batch_size <= 5.0
        assert 0.0 < stats.batch_occupancy <= 1.0
        assert stats.p95_latency_ms >= stats.p50_latency_ms >= 0.0
        assert stats.throughput_qps > 0.0
        assert 0.0 <= stats.cache_hit_rate <= 1.0


def test_invalid_parameters_rejected(approx_index):
    with pytest.raises(ValueError):
        QueryService(approx_index, max_batch_size=0)
    with pytest.raises(ValueError):
        QueryService(approx_index, max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        QueryService(approx_index, bucket_seconds=-0.5)


def test_concurrent_submitters_get_consistent_answers(approx_index):
    workload = _workload(approx_index.graph, count=48, seed=12)
    expected = {
        (s, t, d): approx_index.query(s, t, d).cost for s, t, d in workload
    }
    with QueryService(approx_index, max_batch_size=16, max_wait_ms=2.0) as svc:
        results: dict[int, list[float]] = {}

        def run(worker: int) -> None:
            results[worker] = [svc.query(s, t, d) for s, t, d in workload[worker::4]]

        threads = [threading.Thread(target=run, args=(k,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        for k in range(4):
            assert results[k] == [expected[q] for q in workload[k::4]]


def test_engine_crash_settles_futures_and_keeps_service_alive(
    approx_index, monkeypatch
):
    """A non-ReproError from the engine must fail the batch's futures, not the
    flusher thread — later traffic must still be answered."""
    real = approx_index.batch_query
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ValueError("engine bug")
        return real(*args, **kwargs)

    monkeypatch.setattr(approx_index, "batch_query", flaky)
    workload = _workload(approx_index.graph, count=4, seed=21)
    with QueryService(approx_index, max_batch_size=2, max_wait_ms=5.0) as svc:
        first, second = (svc.submit(s, t, d) for s, t, d in workload[:2])
        with pytest.raises(ValueError, match="engine bug"):
            first.result(timeout=10)
        with pytest.raises(ValueError, match="engine bug"):
            second.result(timeout=10)
        # The service survives and answers subsequent traffic correctly.
        s, t, d = workload[2]
        assert svc.query(s, t, d) == approx_index.query(s, t, d).cost


def test_invalidation_during_flight_skips_cache_population(
    approx_index, monkeypatch
):
    """Costs computed before an invalidation must not repopulate the cache."""
    real = approx_index.batch_query

    holder = {}

    def racing(*args, **kwargs):
        result = real(*args, **kwargs)
        holder["svc"].invalidate_cache()  # update lands while batch in flight
        return result

    monkeypatch.setattr(approx_index, "batch_query", racing)
    with QueryService(approx_index, max_batch_size=8, max_wait_ms=60_000.0) as svc:
        holder["svc"] = svc
        s, t, d = _workload(approx_index.graph, count=1, seed=22)[0]
        future = svc.submit(s, t, d)
        svc.flush()
        assert future.result(timeout=10) == approx_index.query(s, t, d).cost
        stats = svc.stats()
        assert stats.cache_entries == 0
        assert stats.cache_invalidations == 1
