"""Deterministic fault injection: the FaultyEngine wrapper and its spec form.

Faults are seeded and trigger on exact batch ordinals, so every chaos test
in this suite (and :mod:`tests.serving.test_chaos`) is reproducible.
"""

from __future__ import annotations

import time

import pytest

from repro.api import available_engines, create_engine
from repro.api.engine import Engine
from repro.exceptions import ReproError
from repro.serving import (
    FaultPlan,
    FaultyEngine,
    InjectedFaultError,
    QueryService,
    TransientInjectedFaultError,
)


@pytest.fixture()
def inner_engine(small_grid):
    return create_engine("td-appro?budget_fraction=0.4&max_points=16", small_grid)


class TestFaultPlan:
    def test_defaults_disable_everything(self):
        plan = FaultPlan()
        assert plan.fail_batch == 0
        assert plan.crash_batch == 0
        assert plan.poison_from == 0
        assert plan.latency_every == 0

    def test_negative_triggers_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_batch=-1)
        with pytest.raises(ValueError):
            FaultPlan(latency_ms=-0.5)


class TestErrorTaxonomy:
    def test_transient_fault_degrades_gracefully(self):
        # ReproError from a vectorized batch makes the service fall back to
        # per-query evaluation; a transient injected fault must ride that path.
        assert issubclass(TransientInjectedFaultError, ReproError)
        assert issubclass(TransientInjectedFaultError, InjectedFaultError)

    def test_hard_fault_is_a_crash(self):
        # A hard crash must NOT be a ReproError, or the service would degrade
        # instead of failing the whole batch like a real worker death.
        assert not issubclass(InjectedFaultError, ReproError)
        assert issubclass(InjectedFaultError, RuntimeError)

    def test_message_carries_batch_and_kind(self):
        error = InjectedFaultError(3, kind="crash")
        assert error.batch_number == 3
        assert "3" in str(error) and "crash" in str(error)


class TestFaultyEngine:
    def test_zero_plan_is_transparent(self, inner_engine):
        wrapper = FaultyEngine(inner_engine)
        direct = inner_engine.query(0, 24, 0.0)
        wrapped = wrapper.query(0, 24, 0.0)
        assert wrapped.cost == direct.cost
        matrix = wrapper.batch_query([0, 1], [24, 23], [0.0, 0.0])
        assert matrix.engine == wrapper.name
        assert wrapper.batch_calls == 1

    def test_satisfies_engine_protocol(self, inner_engine):
        assert isinstance(FaultyEngine(inner_engine), Engine)

    def test_results_are_retagged_with_wrapper_name(self, inner_engine):
        wrapper = FaultyEngine(inner_engine, name="faulty")
        assert wrapper.query(0, 24, 0.0).engine == "faulty"
        profile = wrapper.profile(0, 24)
        assert profile.engine == "faulty"

    def test_crash_batch_raises_hard_fault_once(self, inner_engine):
        wrapper = FaultyEngine(inner_engine, FaultPlan(crash_batch=2))
        wrapper.batch_query([0], [24], [0.0])  # batch 1: fine
        with pytest.raises(InjectedFaultError) as excinfo:
            wrapper.batch_query([0], [24], [0.0])  # batch 2: crash
        assert excinfo.value.batch_number == 2
        assert not isinstance(excinfo.value, ReproError)
        # One-shot: the next batch succeeds (a restarted worker recovers).
        assert wrapper.batch_query([0], [24], [0.0]).costs[0] > 0.0

    def test_fail_batch_raises_transient_fault(self, inner_engine):
        wrapper = FaultyEngine(inner_engine, FaultPlan(fail_batch=1))
        with pytest.raises(TransientInjectedFaultError):
            wrapper.batch_query([0], [24], [0.0])
        assert wrapper.batch_query([0], [24], [0.0]).costs[0] > 0.0

    def test_poison_from_is_persistent(self, inner_engine):
        wrapper = FaultyEngine(inner_engine, FaultPlan(poison_from=2))
        wrapper.batch_query([0], [24], [0.0])
        for _ in range(3):  # poisoned engines never come back
            with pytest.raises(InjectedFaultError):
                wrapper.batch_query([0], [24], [0.0])

    def test_scalar_queries_are_unaffected_by_batch_faults(self, inner_engine):
        # Recovery verification uses scalar query() on the same engine;
        # faults target the batch path only.
        wrapper = FaultyEngine(inner_engine, FaultPlan(poison_from=1))
        with pytest.raises(InjectedFaultError):
            wrapper.batch_query([0], [24], [0.0])
        assert wrapper.query(0, 24, 0.0).cost == inner_engine.query(0, 24, 0.0).cost

    def test_latency_spike_is_deterministic(self, inner_engine):
        plan = FaultPlan(latency_every=2, latency_ms=40.0, seed=9)
        timings = []
        for trial in range(2):
            wrapper = FaultyEngine(inner_engine, plan)
            per_batch = []
            for _ in range(2):
                started = time.perf_counter()
                wrapper.batch_query([0], [24], [0.0])
                per_batch.append(time.perf_counter() - started)
            timings.append(per_batch)
        for per_batch in timings:
            assert per_batch[0] < 0.02  # batch 1: no spike
            assert per_batch[1] >= 0.02  # batch 2: spiked
        # Seeded jitter: both trials sleep the same amount (within scheduling
        # noise).
        assert timings[0][1] == pytest.approx(timings[1][1], abs=0.02)

    def test_unknown_attributes_delegate_to_inner(self, inner_engine):
        wrapper = FaultyEngine(inner_engine)
        assert wrapper.capabilities() == inner_engine.capabilities()
        assert wrapper.graph is inner_engine.graph


class TestRegistrySpec:
    def test_faulty_is_listed(self):
        assert "faulty" in available_engines()

    def test_spec_builds_wrapper_over_inner_spec(self, small_grid):
        engine = create_engine(
            "faulty:td-appro?crash_batch=2&budget_fraction=0.4&max_points=16",
            small_grid,
        )
        assert engine.name == "faulty"
        assert engine.inner.name == "td-appro"
        assert engine.plan.crash_batch == 2
        engine.batch_query([0], [24], [0.0])
        with pytest.raises(InjectedFaultError):
            engine.batch_query([0], [24], [0.0])

    def test_spec_separates_fault_options_from_inner_options(self, small_grid):
        engine = create_engine(
            "faulty:td-appro?fail_batch=3&latency_ms=1.5&budget_fraction=0.4"
            "&max_points=16",
            small_grid,
        )
        assert engine.plan.fail_batch == 3
        assert engine.plan.latency_ms == 1.5
        # budget_fraction went to the inner engine, not the plan.
        assert engine.plan.seed == 0

    def test_wrapped_engine_serves_through_a_service(self, small_grid):
        engine = create_engine(
            "faulty:td-appro?fail_batch=1&budget_fraction=0.4&max_points=16",
            small_grid,
        )
        baseline = engine.inner.query(0, 24, 0.0).cost
        with QueryService(engine, max_batch_size=8, max_wait_ms=5.0) as svc:
            futures = [svc.submit(v, 24 - v, 0.0) for v in range(8)]
            svc.flush()
            # The transient fault degraded the batch to per-query evaluation:
            # every answer still arrives.
            costs = [f.result(5.0) for f in futures]
        assert costs[0] == baseline
        assert all(c > 0.0 for c in costs)
