"""Behavioural tests for the :class:`EngineHost` serving control plane.

The headline contract is the hot swap: while :meth:`EngineHost.swap` runs,
no submitter sees an error and no future is dropped, and once it returns
every delivered answer is bit-identical to the replacement engine's own
scalar ``query``.  Everything here is deterministic (no Hypothesis): the
swap-under-load scenario drives real threads against real engines but
asserts exact membership of each answer in the {old engine, new engine}
cost maps computed up front.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import PiecewiseLinearFunction, create_engine
from repro.exceptions import (
    DuplicateDeploymentError,
    EngineSpecError,
    HostError,
    UnknownDeploymentError,
    VertexNotFoundError,
)
from repro.serving import DeploymentInfo, EngineHost, ServiceStats, SwapReport
from repro.serving.stats import LatencyReservoir


def _workload(graph, count=24, seed=5):
    import numpy as np

    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(0.0, 86_400.0)),
        )
        for _ in range(count)
    ]


def _slowed_copy(graph, factor=3.0):
    """A clone of ``graph`` with every travel-cost profile scaled."""
    clone = graph.copy()
    for u, v, w in list(clone.edges()):
        clone.set_weight(
            u, v, PiecewiseLinearFunction(w.times, w.costs * factor, validate=False)
        )
    return clone


@pytest.fixture()
def host():
    with EngineHost(max_batch_size=16, max_wait_ms=2.0) as h:
        yield h


# ----------------------------------------------------------------------
# Deploy / undeploy / lifecycle
# ----------------------------------------------------------------------
def test_deploy_from_spec_and_query(host, small_grid):
    info = host.deploy("prod", "td-basic", small_grid)
    assert isinstance(info, DeploymentInfo)
    assert info.spec == "td-basic" and info.swap_count == 0
    reference = create_engine("td-basic", small_grid)
    for s, t, d in _workload(small_grid, count=6):
        assert host.query("prod", s, t, d) == reference.query(s, t, d).cost


def test_deploy_engine_object(host, small_grid):
    engine = create_engine("td-basic", small_grid)
    info = host.deploy("prod", engine)
    assert info.spec == "td-basic"
    assert info.engine is engine
    s, t, d = _workload(small_grid, count=1)[0]
    assert host.query("prod", s, t, d) == engine.query(s, t, d).cost


def test_deploy_engine_object_with_graph_rejected(host, small_grid):
    engine = create_engine("td-basic", small_grid)
    with pytest.raises(HostError):
        host.deploy("prod", engine, small_grid)


def test_duplicate_deploy_refused(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    with pytest.raises(DuplicateDeploymentError):
        host.deploy("prod", "td-basic", small_grid)


def test_unknown_deployment_lists_active(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    with pytest.raises(UnknownDeploymentError) as excinfo:
        host.query("staging", 0, 1, 0.0)
    assert "prod" in str(excinfo.value)


def test_spec_without_graph_fails_loudly(host):
    with pytest.raises(EngineSpecError):
        host.deploy("prod", "td-basic")


def test_undeploy_returns_final_stats(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    s, t, d = _workload(small_grid, count=1)[0]
    host.query("prod", s, t, d)
    stats = host.undeploy("prod")
    assert isinstance(stats, ServiceStats)
    assert stats.queries_answered == 1
    assert "prod" not in host.deployments()
    with pytest.raises(UnknownDeploymentError):
        host.undeploy("prod")


def test_closed_host_refuses_work(small_grid):
    host = EngineHost()
    host.deploy("prod", "td-basic", small_grid)
    host.close()
    host.close()  # idempotent
    with pytest.raises(HostError):
        host.query("prod", 0, 1, 0.0)
    with pytest.raises(HostError):
        host.deploy("other", "td-basic", small_grid)


def test_deployments_listing(host, small_grid):
    assert host.deployments() == ()
    host.deploy("a", "td-basic", small_grid)
    host.deploy("b", "td-dijkstra", small_grid)
    assert host.deployments() == ("a", "b")
    assert "a" in repr(host)


# ----------------------------------------------------------------------
# Hot swap
# ----------------------------------------------------------------------
def test_swap_answers_match_replacement_engine(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    patched = _slowed_copy(small_grid)
    replacement = create_engine("td-basic", patched)

    report = host.swap("prod", replacement)
    assert isinstance(report, SwapReport)
    assert report.deployment == "prod"
    assert report.old_spec == "td-basic" and report.new_spec == "td-basic"
    assert report.total_seconds >= 0.0
    assert host.deployment("prod").swap_count == 1
    assert host.deployment("prod").engine is replacement

    for s, t, d in _workload(small_grid, count=8, seed=7):
        assert host.query("prod", s, t, d) == replacement.query(s, t, d).cost


def test_swap_with_ready_engine_records_spec_override(host, small_grid):
    """``spec=`` keeps the deployment's recorded spec truthful.

    Without it, swapping in a ready engine degrades the recorded spec to the
    engine's bare name, and later rebuilds/snapshots silently lose build
    options such as ``?max_points=none``.
    """
    host.deploy("prod", "td-h2h?max_points=none", small_grid)
    replacement = create_engine("td-h2h?max_points=none", small_grid.copy())

    report = host.swap("prod", replacement, spec="td-h2h?max_points=none")
    assert report.new_spec == "td-h2h?max_points=none"
    assert host.deployment("prod").spec == "td-h2h?max_points=none"

    # Default behavior (no override) records the engine's bare name.
    host.swap("prod", create_engine("td-h2h?max_points=none", small_grid.copy()))
    assert host.deployment("prod").spec == "td-h2h"


def test_swap_from_spec_reuses_current_graph(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    report = host.swap("prod", "td-appro?budget_fraction=0.4")
    assert report.new_spec == "td-appro?budget_fraction=0.4"
    reference = create_engine("td-appro?budget_fraction=0.4", small_grid)
    for s, t, d in _workload(small_grid, count=6, seed=8):
        assert host.query("prod", s, t, d) == reference.query(s, t, d).cost


def test_swap_unknown_deployment(host, small_grid):
    with pytest.raises(UnknownDeploymentError):
        host.swap("prod", "td-basic", small_grid)


def test_swap_invalidates_cached_answers(small_grid):
    """A result cached against the old engine must not survive the swap."""
    with EngineHost(max_batch_size=4, max_wait_ms=1.0, cache_size=1024) as host:
        host.deploy("prod", "td-basic", small_grid)
        s, t, d = _workload(small_grid, count=1, seed=9)[0]
        before = host.query("prod", s, t, d)
        patched = _slowed_copy(small_grid)
        replacement = create_engine("td-basic", patched)
        host.swap("prod", replacement)
        after = host.query("prod", s, t, d)
        assert after == replacement.query(s, t, d).cost
        if before != after:  # a degenerate pair could cost the same
            assert before == create_engine("td-basic", small_grid).query(s, t, d).cost


def test_stats_aggregate_across_swaps(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    workload = _workload(small_grid, count=5, seed=10)
    for s, t, d in workload:
        host.query("prod", s, t, d)
    host.swap("prod", create_engine("td-basic", _slowed_copy(small_grid)))
    for s, t, d in workload:
        host.query("prod", s, t, d)

    stats = host.stats("prod")
    assert stats.queries_submitted == 10
    assert stats.queries_answered == 10
    assert stats.num_batches >= 2
    everything = host.stats()
    assert set(everything) == {"prod"}
    assert everything["prod"].queries_answered == 10


def test_swap_under_load_zero_downtime(small_grid):
    """The acceptance scenario: hammering threads see zero errors across a
    swap, every future resolves, and every answer delivered after ``swap``
    returns is bit-identical to the replacement engine's scalar ``query``."""
    old_engine = create_engine("td-basic", small_grid)
    replacement = create_engine("td-basic", _slowed_copy(small_grid))
    workload = _workload(small_grid, count=16, seed=11)
    old_costs = {q: old_engine.query(*q).cost for q in workload}
    new_costs = {q: replacement.query(*q).cost for q in workload}
    assert any(old_costs[q] != new_costs[q] for q in workload)  # discriminating

    host = EngineHost(max_batch_size=8, max_wait_ms=1.0, cache_size=0)
    host.deploy("prod", old_engine)
    stop = threading.Event()
    errors: list[BaseException] = []
    results: list[tuple[float, tuple, float]] = []

    def hammer() -> None:
        local: list[tuple[float, tuple, float]] = []
        while not stop.is_set():
            for q in workload:
                submitted = time.perf_counter()
                try:
                    local.append((submitted, q, host.query("prod", *q)))
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    stop.set()
                    return
        results.extend(local)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    time.sleep(0.15)  # let traffic build up against the old engine
    report = host.swap("prod", replacement)
    swap_returned = time.perf_counter()
    time.sleep(0.15)  # keep hammering the replacement
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    host.close()

    assert not errors, f"swap leaked an error to a submitter: {errors[:1]!r}"
    assert report.switch_seconds < 1.0  # the flip is a pointer assignment
    before = [r for r in results if r[0] < swap_returned]
    after = [r for r in results if r[0] >= swap_returned]
    assert before and after, "load must straddle the swap"
    for _, q, cost in before:
        # In-flight queries may be answered by either side of the swap.
        assert cost in (old_costs[q], new_costs[q])
    for _, q, cost in after:
        assert cost == new_costs[q]


# ----------------------------------------------------------------------
# Snapshot-backed deployments
# ----------------------------------------------------------------------
def test_snapshot_roundtrips_into_servable_deployment(host, small_grid, tmp_path):
    host.deploy("prod", "td-appro?budget_fraction=0.4", small_grid)
    directory = host.snapshot("prod", tmp_path / "prod.index")

    from repro.persistence import read_manifest

    assert read_manifest(directory)["engine_spec"] == "td-appro?budget_fraction=0.4"

    host.deploy("replica", f"snapshot:{directory}")
    assert host.deployment("replica").engine.name == "td-appro"
    for s, t, d in _workload(small_grid, count=8, seed=12):
        assert host.query("replica", s, t, d) == host.query("prod", s, t, d)


def test_swap_to_snapshot_spec(host, small_grid, tmp_path):
    host.deploy("prod", "td-appro?budget_fraction=0.4", small_grid)
    directory = host.snapshot("prod", tmp_path / "prod.index")
    expected = {
        q: host.query("prod", *q) for q in _workload(small_grid, count=6, seed=13)
    }
    host.swap("prod", "td-basic")  # move off, then restore from the snapshot
    report = host.swap("prod", f"snapshot:{directory}")
    assert report.new_spec == f"snapshot:{directory}"
    for q, cost in expected.items():
        assert host.query("prod", *q) == cost


def test_resnapshot_records_engine_name_not_snapshot_path(host, small_grid, tmp_path):
    """Snapshotting a snapshot-provisioned deployment must not chain paths."""
    from repro.persistence import read_manifest

    host.deploy("prod", "td-appro?budget_fraction=0.4", small_grid)
    first = host.snapshot("prod", tmp_path / "first.index")
    host.deploy("replica", f"snapshot:{first}")
    second = host.snapshot("replica", tmp_path / "second.index")
    # The re-snapshot records the resolved engine name, not "snapshot:<first>"
    # (which would embed a possibly-deleted path and lose the name).
    assert read_manifest(second)["engine_spec"] == "td-appro"
    rehydrated = create_engine(f"snapshot:{second}")
    assert rehydrated.name == "td-appro"
    s, t, d = _workload(small_grid, count=1, seed=18)[0]
    assert rehydrated.query(s, t, d).cost == host.query("prod", s, t, d)


def test_create_engine_snapshot_spec_roundtrip(small_grid, tmp_path):
    """The registry-level acceptance: spec -> snapshot -> spec, bit-identical."""
    built = create_engine("td-appro?budget_fraction=0.4", small_grid)
    built.index.save(tmp_path / "snap", engine_spec="td-appro?budget_fraction=0.4")
    served = create_engine(f"snapshot:{tmp_path / 'snap'}")
    assert served.name == "td-appro"
    for s, t, d in _workload(small_grid, count=8, seed=14):
        assert served.query(s, t, d).cost == built.query(s, t, d).cost


def test_snapshot_spec_rejects_graph(small_grid, tmp_path):
    built = create_engine("td-basic", small_grid)
    built.index.save(tmp_path / "snap")
    with pytest.raises(EngineSpecError):
        create_engine(f"snapshot:{tmp_path / 'snap'}", small_grid)


# ----------------------------------------------------------------------
# Async facade
# ----------------------------------------------------------------------
def test_aquery_matches_scalar(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    reference = create_engine("td-basic", small_grid)
    workload = _workload(small_grid, count=6, seed=15)

    async def main() -> list[float]:
        return list(
            await asyncio.gather(*(host.aquery("prod", s, t, d) for s, t, d in workload))
        )

    costs = asyncio.run(main())
    assert costs == [reference.query(s, t, d).cost for s, t, d in workload]


def test_asubmit_returns_awaitable_future(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    s, t, d = _workload(small_grid, count=1, seed=16)[0]

    async def main() -> float:
        future = host.asubmit("prod", s, t, d)
        assert isinstance(future, asyncio.Future)
        host.flush("prod")
        return await future

    assert asyncio.run(main()) == host.query("prod", s, t, d)


def test_async_error_propagates(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    missing = max(small_grid.vertices()) + 1000

    async def main() -> float:
        return await host.aquery("prod", 0, missing, 0.0)

    with pytest.raises(VertexNotFoundError):
        asyncio.run(main())


def test_aswap_runs_off_loop(host, small_grid):
    host.deploy("prod", "td-basic", small_grid)
    replacement = create_engine("td-basic", _slowed_copy(small_grid))

    async def main() -> SwapReport:
        return await host.aswap("prod", replacement)

    report = asyncio.run(main())
    assert report.deployment == "prod"
    s, t, d = _workload(small_grid, count=1, seed=17)[0]
    assert host.query("prod", s, t, d) == replacement.query(s, t, d).cost


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------
def test_service_stats_merged_counters():
    one = ServiceStats(
        queries_submitted=10,
        queries_answered=8,
        cache_hits=2,
        cache_entries=5,
        cache_invalidations=1,
        num_batches=2,
        avg_batch_size=3.0,
        batch_occupancy=0.5,
        p50_latency_ms=1.0,
        p95_latency_ms=2.0,
        throughput_qps=100.0,
        elapsed_seconds=0.08,
    )
    two = ServiceStats(
        queries_submitted=20,
        queries_answered=16,
        cache_hits=4,
        cache_entries=7,
        cache_invalidations=0,
        num_batches=6,
        avg_batch_size=2.0,
        batch_occupancy=0.25,
        p50_latency_ms=3.0,
        p95_latency_ms=6.0,
        throughput_qps=200.0,
        elapsed_seconds=0.08,
    )
    merged = ServiceStats.merged([one, two])
    assert merged.queries_submitted == 30
    assert merged.queries_answered == 24
    assert merged.cache_hits == 6
    assert merged.cache_entries == 7  # the live (last) cache
    assert merged.cache_invalidations == 1
    assert merged.num_batches == 8
    assert merged.avg_batch_size == pytest.approx((3.0 * 2 + 2.0 * 6) / 8)
    assert merged.batch_occupancy == pytest.approx((0.5 * 2 + 0.25 * 6) / 8)
    assert merged.p50_latency_ms == pytest.approx((1.0 * 8 + 3.0 * 16) / 24)
    assert merged.throughput_qps == pytest.approx(24 / 0.16)
    assert merged.elapsed_seconds == pytest.approx(0.16)


def test_service_stats_merged_degenerate_cases():
    empty = ServiceStats.merged([])
    assert empty.queries_submitted == 0 and empty.throughput_qps == 0.0
    one = ServiceStats(1, 1, 0, 0, 0, 1, 1.0, 0.1, 0.0, 0.0, 10.0, 0.1)
    assert ServiceStats.merged([one]) == one


def _stats_from_reservoir(answered: int, reservoir: LatencyReservoir) -> ServiceStats:
    return ServiceStats(
        queries_submitted=answered,
        queries_answered=answered,
        cache_hits=0,
        cache_entries=0,
        cache_invalidations=0,
        num_batches=1,
        avg_batch_size=float(answered),
        batch_occupancy=1.0,
        p50_latency_ms=reservoir.percentile_ms(50.0),
        p95_latency_ms=reservoir.percentile_ms(95.0),
        throughput_qps=float(answered),
        elapsed_seconds=1.0,
        p99_latency_ms=reservoir.percentile_ms(99.0),
        latency_bucket_counts=reservoir.bucket_counts,
    )


def test_service_stats_merged_percentiles_from_buckets():
    """Regression (PR 7): weighted-averaging percentiles is statistically wrong.

    Generation one answered 90 fast queries (~0.8 ms); generation two
    answered 10 slow ones (~3 s).  The old answered-weighted mean reported
    p99 ≈ (1.0·90 + 3000·10) / 100 ≈ 301 ms — an *impossible* value neither
    generation ever observed (nothing latencied between 1 ms and 3 s).  The
    bucket merge places p99 in the slow generation's bucket, where 10% of
    the combined traffic actually lives.
    """
    fast = LatencyReservoir()
    fast.extend([0.0008] * 90)
    slow = LatencyReservoir()
    slow.extend([3.0] * 10)
    merged = ServiceStats.merged(
        [_stats_from_reservoir(90, fast), _stats_from_reservoir(10, slow)]
    )
    impossible = (fast.percentile_ms(99.0) * 90 + slow.percentile_ms(99.0) * 10) / 100
    assert 1.0 < impossible < 2_500.0  # what the old weighted mean reported
    assert merged.p99_latency_ms > 2_500.0  # inside the slow bucket
    assert merged.p50_latency_ms <= 1.0  # the fast mass still dominates p50
    # The merged bucket counts are the exact union of both generations.
    assert sum(merged.latency_bucket_counts) == 100
    assert merged.latency_bucket_counts == tuple(
        a + b for a, b in zip(fast.bucket_counts, slow.bucket_counts)
    )


def test_service_stats_merged_falls_back_without_buckets():
    """Legacy snapshots (no bucket counts) keep the old weighted behaviour."""
    legacy = ServiceStats(10, 10, 0, 0, 0, 1, 10.0, 1.0, 1.0, 2.0, 10.0, 1.0,
                          p99_latency_ms=4.0)
    other = ServiceStats(30, 30, 0, 0, 0, 1, 30.0, 1.0, 3.0, 6.0, 30.0, 1.0,
                         p99_latency_ms=8.0)
    merged = ServiceStats.merged([legacy, other])
    assert merged.p99_latency_ms == pytest.approx((4.0 * 10 + 8.0 * 30) / 40)
    assert merged.latency_bucket_counts == ()
