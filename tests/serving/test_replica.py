"""Behavioural tests for multi-process replica serving.

The headline contracts of :class:`~repro.serving.ReplicaPool`:

* **bit-identical answers** — every cost answered by a worker process equals
  the scalar oracle's, exactly (the replicas rehydrate the same snapshot the
  oracle was saved from, and costs cross the queue as raw float64);
* **shared memory** — workers map the snapshot with ``mmap_mode="r"``, so N
  replicas cost one index's worth of physical RAM (the mapping itself is
  proven in tests/persistence/test_snapshot.py);
* **typed errors cross the process boundary** — a worker-side
  ``VertexNotFoundError`` re-raises in the parent as the same type with the
  same attributes (which is what tests/test_exceptions.py's ``__reduce__``
  contract buys);
* **liveness folds into supervision** — a SIGKILLed worker is respawned from
  the snapshot by ``check()``, its in-flight requests failed with
  :class:`~repro.exceptions.WorkerCrashedError`, and at the host level the
  deployment walks DEGRADED -> HEALTHY through the existing recovery ladder.

Worker processes use the ``spawn`` start method (~0.5-1 s each), so pools are
shared per module where the test is read-only.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import replace

import numpy as np
import pytest

from repro import create_engine
from repro.exceptions import (
    HostError,
    ServiceClosedError,
    SnapshotError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.obs.metrics import LATENCY_BUCKETS_MS, bucket_percentile
from repro.persistence import save_index
from repro.serving import (
    EngineHost,
    QueryService,
    ReplicaPool,
    ServiceStats,
)
from repro.serving.supervision import HealthState

N_BUCKET_SLOTS = len(LATENCY_BUCKETS_MS) + 1


def _workload(graph, count=40, seed=11):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return (
        rng.choice(vertices, count).astype(np.int64),
        rng.choice(vertices, count).astype(np.int64),
        rng.uniform(0.0, 86_400.0, count),
    )


@pytest.fixture(scope="module")
def snapshot_dir(basic_index, tmp_path_factory):
    """One saved snapshot every pool in this module rehydrates from."""
    return basic_index.save(
        tmp_path_factory.mktemp("replica-snap") / "snap"
    )


@pytest.fixture(scope="module")
def pool(snapshot_dir):
    """A shared 2-worker pool for the read-only tests."""
    p = ReplicaPool(snapshot_dir, 2, name="test-pool")
    yield p
    p.close()


def _wait_for_exit(pid, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except OSError:
            return
        time.sleep(0.05)


# ----------------------------------------------------------------------
# Answers
# ----------------------------------------------------------------------
class TestAnswers:
    def test_batch_answers_bit_identical_to_oracle(self, pool, basic_index):
        sources, targets, departures = _workload(basic_index.graph)
        expected = basic_index.batch_query(sources, targets, departures).costs
        got = pool.batch_query(sources, targets, departures).costs
        assert np.array_equal(got, expected)

    def test_scalar_answers_bit_identical_to_oracle(self, pool, basic_index):
        sources, targets, departures = _workload(basic_index.graph, count=8)
        for s, t, d in zip(sources, targets, departures):
            assert (
                pool.query(int(s), int(t), float(d)).cost
                == basic_index.query(int(s), int(t), float(d)).cost
            )

    def test_engine_protocol_surface(self, pool):
        assert pool.capabilities().batch
        assert pool.name == "test-pool"
        assert pool.size == 2
        assert pool.mmap_mode == "r"
        assert pool.alive_count == 2

    def test_typed_errors_cross_the_process_boundary(self, pool):
        with pytest.raises(VertexNotFoundError) as excinfo:
            pool.query(10_000_000, 0, 0.0)
        assert excinfo.value.vertex == 10_000_000

    def test_pool_slots_under_query_service(self, pool, basic_index):
        """The pool is a drop-in engine for the micro-batching service."""
        sources, targets, departures = _workload(basic_index.graph, count=16, seed=23)
        expected = basic_index.batch_query(sources, targets, departures).costs
        with QueryService(pool, max_wait_ms=1.0, cache_size=0) as service:
            futures = [
                service.submit(int(s), int(t), float(d))
                for s, t, d in zip(sources, targets, departures)
            ]
            service.flush()
            got = [f.result(timeout=30.0) for f in futures]
        assert np.array_equal(np.asarray(got), expected)


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
class TestPoolStats:
    def test_per_replica_stats_and_merge(self, snapshot_dir, basic_index):
        sources, targets, departures = _workload(basic_index.graph, count=30, seed=31)
        with_pool = ReplicaPool(snapshot_dir, 2, name="stats-pool")
        try:
            for s, t, d in zip(sources, targets, departures):
                with_pool.query(int(s), int(t), float(d))
            parts = with_pool.stats()
            assert len(parts) == 2
            # Least-loaded routing with sequential queries spreads the work.
            assert all(p.queries_answered > 0 for p in parts)
            assert sum(p.queries_answered for p in parts) == 30
            merged = with_pool.merged_stats()
            assert merged.queries_answered == 30
            assert len(merged.latency_bucket_counts) == N_BUCKET_SLOTS
            assert sum(merged.latency_bucket_counts) == 30
        finally:
            with_pool.close()

    def test_unqueried_replica_merges_as_empty(self, snapshot_dir):
        with_pool = ReplicaPool(snapshot_dir, 2, name="idle-pool")
        try:
            with_pool.query(0, 1, 0.0)
            parts = with_pool.stats()
            answered = sorted(p.queries_answered for p in parts)
            assert answered == [0, 1]
            merged = ServiceStats.merged(parts)
            assert merged.queries_answered == 1
        finally:
            with_pool.close()


class TestMergedReplicaStats:
    """``ServiceStats.merged`` over per-replica snapshots (pure, no workers).

    Replica stats behave like swap generations with *disjoint* histories:
    each worker counted its own queries into its own latency buckets, so a
    pool-wide merge must add bucket counts exactly and recompute percentiles
    from the combined histogram — never average per-replica percentiles.
    """

    @staticmethod
    def _replica_stats(answered, bucket_slot, *, elapsed, cache_entries=0):
        buckets = [0] * N_BUCKET_SLOTS
        buckets[bucket_slot] = answered
        return ServiceStats(
            queries_submitted=answered,
            queries_answered=answered,
            cache_hits=0,
            cache_entries=cache_entries,
            cache_invalidations=0,
            num_batches=max(1, answered // 4),
            avg_batch_size=4.0,
            batch_occupancy=0.5,
            p50_latency_ms=float(LATENCY_BUCKETS_MS[bucket_slot]),
            p95_latency_ms=float(LATENCY_BUCKETS_MS[bucket_slot]),
            throughput_qps=answered / elapsed,
            elapsed_seconds=elapsed,
            p99_latency_ms=float(LATENCY_BUCKETS_MS[bucket_slot]),
            latency_bucket_counts=tuple(buckets),
        )

    def test_three_replicas_with_disjoint_generations(self):
        # Three workers whose latency mass sits in disjoint buckets.
        fast = self._replica_stats(60, 1, elapsed=2.0)
        mid = self._replica_stats(30, 4, elapsed=1.5)
        slow = self._replica_stats(10, 7, elapsed=0.5, cache_entries=9)
        merged = ServiceStats.merged([fast, mid, slow])

        assert merged.queries_answered == 100
        assert merged.queries_submitted == 100
        assert merged.elapsed_seconds == pytest.approx(4.0)
        assert merged.throughput_qps == pytest.approx(100 / 4.0)
        assert merged.cache_entries == 9  # the last part's live cache
        # Bucket counts add exactly across replicas ...
        expected_counts = [0] * N_BUCKET_SLOTS
        expected_counts[1], expected_counts[4], expected_counts[7] = 60, 30, 10
        assert merged.latency_bucket_counts == tuple(expected_counts)
        # ... and the merged percentiles are true combined-histogram
        # percentiles: p50 lands in the fast worker's bucket (60 of 100
        # samples), p99 in the slow worker's.
        assert merged.p50_latency_ms == bucket_percentile(
            LATENCY_BUCKETS_MS, merged.latency_bucket_counts, 50.0
        )
        assert merged.p50_latency_ms <= float(LATENCY_BUCKETS_MS[1])
        assert merged.p99_latency_ms >= float(LATENCY_BUCKETS_MS[6])

    def test_zero_query_replica_does_not_poison_the_merge(self):
        """A spawned-but-unqueried (or dead) replica contributes nothing."""
        active = self._replica_stats(40, 2, elapsed=1.0)
        other = self._replica_stats(20, 5, elapsed=1.0)
        idle = ServiceStats.empty()
        merged_with_idle = ServiceStats.merged([active, idle, other])
        merged_without = ServiceStats.merged([active, other])

        assert merged_with_idle.queries_answered == 60
        assert (
            merged_with_idle.latency_bucket_counts
            == merged_without.latency_bucket_counts
        )
        assert merged_with_idle.p50_latency_ms == merged_without.p50_latency_ms
        assert merged_with_idle.p99_latency_ms == merged_without.p99_latency_ms
        # cache_entries tracks the *last* part — the idle one in this order.
        assert ServiceStats.merged([active, idle]).cache_entries == 0

    def test_all_zero_query_replicas_merge_to_empty(self):
        merged = ServiceStats.merged([ServiceStats.empty()] * 3)
        assert merged.queries_answered == 0
        assert merged.p50_latency_ms == 0.0
        assert merged.throughput_qps == 0.0

    def test_empty_carries_full_bucket_tuple(self):
        assert len(ServiceStats.empty().latency_bucket_counts) == N_BUCKET_SLOTS


# ----------------------------------------------------------------------
# Liveness / recovery
# ----------------------------------------------------------------------
class TestLiveness:
    def test_killed_replica_is_respawned_with_identical_answers(
        self, snapshot_dir, basic_index
    ):
        sources, targets, departures = _workload(basic_index.graph, count=12, seed=41)
        expected = basic_index.batch_query(sources, targets, departures).costs
        with_pool = ReplicaPool(snapshot_dir, 2, name="kill-pool")
        try:
            assert np.array_equal(
                with_pool.batch_query(sources, targets, departures).costs, expected
            )
            victim = with_pool.replicas()[0]
            os.kill(victim.pid, signal.SIGKILL)
            _wait_for_exit(victim.pid)
            recoveries = with_pool.check()
            assert [r.action for r in recoveries] == ["respawn"]
            assert recoveries[0].replica == 0
            assert with_pool.alive_count == 2
            respawned = with_pool.replicas()[0]
            assert respawned.alive and respawned.pid != victim.pid
            assert respawned.spawns == 2
            assert np.array_equal(
                with_pool.batch_query(sources, targets, departures).costs, expected
            )
        finally:
            with_pool.close()

    def test_clean_check_reports_nothing(self, pool):
        assert pool.check() == []

    def test_close_is_idempotent_and_final(self, snapshot_dir):
        with_pool = ReplicaPool(snapshot_dir, 1, name="close-pool")
        with_pool.close()
        with_pool.close()
        assert with_pool.closed
        with pytest.raises(ServiceClosedError):
            with_pool.query(0, 1, 0.0)

    def test_missing_snapshot_fails_fast(self, tmp_path):
        with pytest.raises(SnapshotError):
            ReplicaPool(tmp_path / "nowhere", 2)

    def test_invalid_mmap_mode_fails_fast(self, snapshot_dir):
        with pytest.raises(SnapshotError):
            ReplicaPool(snapshot_dir, 1, mmap_mode="r+")

    def test_invalid_replica_count_fails_fast(self, snapshot_dir):
        with pytest.raises(ValueError):
            ReplicaPool(snapshot_dir, 0)


# ----------------------------------------------------------------------
# Host integration (deploy(..., replicas=N))
# ----------------------------------------------------------------------
class TestHostIntegration:
    @pytest.fixture(scope="class")
    def replica_host(self, snapshot_dir):
        host = EngineHost(max_wait_ms=1.0, cache_size=0)
        host.deploy("prod", f"snapshot:{snapshot_dir}", replicas=2)
        yield host
        host.close()

    def test_deployment_reports_replicas(self, replica_host):
        info = replica_host.deployment("prod")
        assert info.replicas == 2
        report = replica_host.health("prod")
        assert report.replicas == 2
        assert report.replicas_alive == 2

    def test_host_answers_bit_identical(self, replica_host, basic_index):
        sources, targets, departures = _workload(basic_index.graph, count=20, seed=53)
        for s, t, d in zip(sources, targets, departures):
            assert replica_host.query(
                "prod", int(s), int(t), float(d)
            ) == basic_index.query(int(s), int(t), float(d)).cost

    def test_replica_stats_are_per_worker(self, replica_host):
        parts = replica_host.replica_stats("prod")
        assert len(parts) == 2
        assert all(isinstance(p, ServiceStats) for p in parts)
        infos = replica_host.replicas("prod")
        assert len(infos) == 2 and all(r.alive for r in infos)

    def test_killed_replica_walks_degraded_then_healthy(self, replica_host):
        victim = replica_host.replicas("prod")[1]
        os.kill(victim.pid, signal.SIGKILL)
        _wait_for_exit(victim.pid)
        reports = replica_host.check()
        assert reports["prod"].action == "respawn"
        assert replica_host.health("prod").state is HealthState.DEGRADED
        # worker_restarts counts the respawn like a service restart.
        assert replica_host.stats("prod").worker_restarts >= 1
        for _ in range(3):  # clean passes promote DEGRADED back
            replica_host.check()
        report = replica_host.health("prod")
        assert report.state is HealthState.HEALTHY
        assert report.replicas_alive == 2

    def test_replica_stats_on_unknown_deployment_raises(self, replica_host):
        with pytest.raises(HostError):
            replica_host.replica_stats("missing")

    def test_single_process_deployment_has_no_replicas(self, snapshot_dir):
        with EngineHost(max_wait_ms=1.0) as host:
            info = host.deploy("solo", f"snapshot:{snapshot_dir}")
            assert info.replicas == 0
            assert host.replicas("solo") == []
            with pytest.raises(HostError):
                host.replica_stats("solo")
            report = host.health("solo")
            assert report.replicas == 0 and report.replicas_alive is None
