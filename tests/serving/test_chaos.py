"""Chaos suite: injected faults against a supervised EngineHost.

Every scenario enforces the resilience layer's core guarantees:

* injected failures are *detected* (by probe signal, not by luck),
* every in-flight future *settles with a typed error* — nothing ever hangs,
* the deployment *recovers by itself* (restart → rehydrate → fallback), and
* post-recovery answers are *bit-identical* to the engine's scalar ``query``.

Detection thresholds come from a :class:`SupervisionConfig` with a huge
``interval_ms`` so the background thread never races the test — each
scenario drives ``host.check()`` by hand and stays deterministic.  The one
exception is :class:`TestBackgroundSupervisor`, which proves the timing
thread end-to-end.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import create_engine
from repro.exceptions import HostError, WorkerCrashedError
from repro.serving import (
    EngineHost,
    HealthState,
    InjectedFaultError,
    QueryService,
    SupervisionConfig,
)
from repro.utils.timing import FakeClock

FAULT_FREE = "td-appro?budget_fraction=0.4&max_points=16"
CRASH_ONCE = f"faulty:{FAULT_FREE}&crash_batch=1"
POISONED = f"faulty:{FAULT_FREE}&poison_from=1"

#: Service knobs that keep batching fully manual: nothing flushes until the
#: test says so, and nothing is served from cache.
MANUAL = {"max_batch_size": 64, "max_wait_ms": 60_000.0, "cache_size": 0}

#: check() is driven manually; the background loop effectively never fires.
MANUAL_CHECKS = 60_000.0


def _config(**overrides):
    defaults = {
        "interval_ms": MANUAL_CHECKS,
        "wedge_timeout_ms": 60_000.0,
        "failure_threshold": 1,
        "recovery_checks": 2,
        "max_restarts": 3,
    }
    defaults.update(overrides)
    return SupervisionConfig(**defaults)


def _answer(host, source=0, target=24, departure=0.0):
    """One deterministic round trip: submit, flush, settle."""
    future = host.submit("prod", source, target, departure)
    host.flush("prod")
    return future.result(5.0)


class TestCrashRecovery:
    def test_hard_crash_detected_futures_typed_and_restarted(self, small_grid):
        engine = create_engine(CRASH_ONCE, small_grid)
        with EngineHost(**MANUAL, supervision=_config()) as host:
            host.deploy("prod", engine)
            futures = [host.submit("prod", v, 24 - v, 0.0) for v in range(4)]
            host.flush("prod")  # batch 1 crashes inside batch_query

            # Guarantee 1+2: everything settles, with the injected error.
            for future in futures:
                assert future.done()
                assert isinstance(future.exception(5.0), InjectedFaultError)

            # Guarantee 3: one check() pass detects and restarts.
            report = host.check()["prod"]
            assert report.action == "restart"
            assert "whole-batch failures" in report.cause
            assert host.health("prod").state is HealthState.DEGRADED

            # Guarantee 4: recovered answers match the engine's scalar path.
            assert _answer(host) == engine.query(0, 24, 0.0).cost

            # Two clean checks promote DEGRADED back to HEALTHY.
            assert host.check() == {}
            assert host.health("prod").state is HealthState.DEGRADED
            assert host.check() == {}
            assert host.health("prod").state is HealthState.HEALTHY
            assert host.stats("prod").worker_restarts == 1

    def test_recovery_abort_fails_pending_futures_typed(self, small_grid):
        # The wedge signal: pending queries age past the timeout because the
        # flusher never gets a batch out (max_wait is effectively infinite).
        # Aging rides the injectable monotonic clock, so a FakeClock advance
        # makes the queries "old" instantly — no wall-clock sleep needed.
        clock = FakeClock()
        config = _config(wedge_timeout_ms=40.0)
        with EngineHost(**MANUAL, supervision=config, clock=clock) as host:
            host.deploy("prod", FAULT_FREE, small_grid)
            stranded = [host.submit("prod", v, 24 - v, 0.0) for v in range(3)]
            clock.advance(0.08)

            report = host.check()["prod"]
            assert report.action == "restart"
            assert "pending query aged" in report.cause
            assert report.failed_futures == 3
            for future in stranded:
                assert isinstance(future.exception(5.0), WorkerCrashedError)
            # The restarted worker serves immediately.
            assert _answer(host) > 0.0

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_flusher_detected_and_restarted(self, small_grid):
        with EngineHost(**MANUAL, supervision=_config()) as host:
            host.deploy("prod", FAULT_FREE, small_grid)
            service = host._service("prod")

            def suicide() -> bool:
                raise SystemExit  # terminates the flusher thread quietly

            service._flusher_step = suicide
            deadline = time.perf_counter() + 5.0
            while service._flusher.is_alive() and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert not service._flusher.is_alive()

            report = host.check()["prod"]
            assert report.action == "restart"
            assert "flusher" in report.cause
            assert _answer(host) > 0.0

    def test_wedged_batch_detected_and_nothing_hangs(self, small_grid):
        spec = f"faulty:{FAULT_FREE}&latency_every=1&latency_ms=400"
        config = _config(wedge_timeout_ms=50.0)
        with EngineHost(**MANUAL, supervision=config) as host:
            host.deploy("prod", spec, small_grid)
            future = host.submit("prod", 0, 24, 0.0)
            flusher = threading.Thread(
                target=lambda: host.flush("prod"), daemon=True
            )
            flusher.start()
            time.sleep(0.15)  # the batch is asleep inside the engine

            report = host.check()["prod"]
            assert report.action == "restart"
            assert "wedged" in report.cause
            flusher.join(timeout=5.0)
            # The wedged batch still settles its future once it wakes up —
            # no future is ever stranded by the restart.
            assert future.result(5.0) > 0.0


class TestEscalation:
    def test_rehydrate_from_snapshot_when_engine_is_poisoned(
        self, small_grid, tmp_path
    ):
        engine = create_engine(POISONED, small_grid)
        config = _config(max_restarts=0)
        with EngineHost(**MANUAL, supervision=config) as host:
            host.deploy("prod", engine)
            host.snapshot("prod", tmp_path / "prod-snap")

            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert isinstance(doomed.exception(5.0), InjectedFaultError)

            report = host.check()["prod"]
            assert report.action == "rehydrate"
            info = host.deployment("prod")
            assert info.spec.startswith("snapshot:")
            # The snapshot held the *inner* index: answers are bit-identical
            # to the unwrapped engine's scalar query.
            assert _answer(host) == engine.inner.query(0, 24, 0.0).cost

            host.check(), host.check()
            assert host.health("prod").state is HealthState.HEALTHY
            assert host.stats("prod").worker_restarts == 1

    def test_fallback_serves_when_restarts_exhausted(self, small_grid):
        config = _config(max_restarts=1)
        with EngineHost(**MANUAL, supervision=config) as host:
            host.deploy("prod", POISONED, small_grid, fallback="td-dijkstra")

            for expected_action in ("restart", "fallback"):
                doomed = host.submit("prod", 0, 24, 0.0)
                host.flush("prod")
                assert doomed.done()
                assert host.check()["prod"].action == expected_action

            health = host.health("prod")
            assert health.state is HealthState.UNHEALTHY
            assert health.cause is not None

            # Traffic now routes to the fallback, bit-identical to querying
            # the fallback engine directly, and counted as degraded.
            exact = create_engine("td-dijkstra", small_grid)
            assert _answer(host) == exact.query(0, 24, 0.0).cost
            stats = host.stats("prod")
            assert stats.degraded_answers == 1
            assert stats.worker_restarts == 1

            # swap() installs a good engine and resets the health machine.
            host.swap("prod", FAULT_FREE, small_grid)
            assert host.health("prod").state is HealthState.HEALTHY
            assert _answer(host) > 0.0

    def test_park_fails_fast_when_no_recovery_path_remains(self, small_grid):
        config = _config(max_restarts=0)
        with EngineHost(**MANUAL, supervision=config) as host:
            host.deploy("prod", POISONED, small_grid)
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert doomed.done()
            stranded = [host.submit("prod", v, 23 - v, 0.0) for v in range(2)]

            report = host.check()["prod"]
            assert report.action == "park"
            assert report.failed_futures == 2
            for future in stranded:
                assert isinstance(future.exception(5.0), WorkerCrashedError)

            # Parked: submits fail fast with the recorded cause, and further
            # checks leave the deployment alone until a swap.
            with pytest.raises(WorkerCrashedError) as excinfo:
                host.submit("prod", 0, 24, 0.0)
            assert excinfo.value.deployment == "prod"
            assert host.check() == {}
            assert host.health("prod").state is HealthState.UNHEALTHY


class TestBackgroundSupervisor:
    def test_self_recovery_without_manual_checks(self, small_grid):
        config = _config(interval_ms=25.0, recovery_checks=1)
        with EngineHost(**MANUAL, supervision=config) as host:
            host.deploy("prod", CRASH_ONCE, small_grid)
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert isinstance(doomed.exception(5.0), InjectedFaultError)

            # No manual check(): the supervisor thread must notice the
            # crashed batch and restart the worker within its interval.
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if host.stats("prod").worker_restarts >= 1:
                    break
                time.sleep(0.01)
            assert host.stats("prod").worker_restarts == 1

            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if host.health("prod").state is HealthState.HEALTHY:
                    break
                time.sleep(0.01)
            assert host.health("prod").state is HealthState.HEALTHY
            assert _answer(host) > 0.0


class TestConcurrentClose:
    """Satellite: close() is idempotent and safe under concurrent callers."""

    def test_racing_service_closes_drain_exactly_once(self, approx_index):
        for _ in range(5):
            svc = QueryService(
                approx_index, max_batch_size=64, max_wait_ms=60_000.0, cache_size=0
            )
            futures = [svc.submit(v, 24 - v, 0.0) for v in range(4)]
            barrier = threading.Barrier(8)
            errors: list[BaseException] = []

            def racer(service: QueryService = svc) -> None:
                try:
                    barrier.wait()
                    service.close()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=racer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)
            assert errors == []
            # The single drain settled everything with real answers.
            for future in futures:
                assert future.done()
                assert future.result() > 0.0
            svc.close()  # still idempotent afterwards

    def test_racing_host_closes_are_idempotent(self, small_grid):
        host = EngineHost(**MANUAL, supervision=_config())
        host.deploy("a", FAULT_FREE, small_grid)
        host.deploy("b", "td-dijkstra", small_grid)
        pending = [host.submit("a", v, 24 - v, 0.0) for v in range(3)]
        barrier = threading.Barrier(6)
        errors: list[BaseException] = []

        def racer() -> None:
            try:
                barrier.wait()
                host.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert host.closed
        assert host.deployments() == ()
        for future in pending:
            assert future.done()  # drained on close: zero stranded futures
        with pytest.raises(HostError):
            host.deploy("c", "td-dijkstra", small_grid)
        host.close()  # idempotent
