"""QueryService over :mod:`repro.api` engines (batched and loop-flushed).

The acceptance bar: any registered engine can be micro-batch served, and a
baseline engine without the batch capability answers with costs bit-identical
to looping its own scalar ``query`` — so baselines and the index can be
A/B-compared under identical traffic through one front-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import create_engine
from repro.exceptions import DisconnectedQueryError
from repro.graph import grid_network
from repro.serving import QueryService


@pytest.fixture(scope="module")
def graph():
    return grid_network(5, 5, num_points=3, seed=3)


def _workload(graph, count=24, seed=42):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(0.0, 86_400.0)),
        )
        for _ in range(count)
    ]


@pytest.mark.parametrize(
    "spec",
    [
        "td-dijkstra",          # no batch capability: loop-flush
        "td-astar",             # no batch capability: loop-flush
        "tdg-tree?leaf_size=8", # no batch capability: loop-flush
        "td-appro?budget_fraction=0.4",  # batch capability: vectorized flush
        "td-basic",             # batch capability: vectorized flush
    ],
)
def test_service_costs_bit_identical_to_scalar_loop(graph, spec):
    engine = create_engine(spec, graph)
    workload = _workload(graph)
    with QueryService(engine, max_batch_size=8, max_wait_ms=5.0) as service:
        futures = [service.submit(s, t, d) for s, t, d in workload]
        service.flush()
        got = [f.result(timeout=30) for f in futures]
    expected = [engine.query(s, t, d).cost for s, t, d in workload]
    assert got == expected  # bit-identical, not approximately equal


def test_loop_flush_isolates_bad_queries(graph):
    """One disconnected query must not poison the rest of a loop-flush batch."""
    engine = create_engine("td-dijkstra", graph)
    missing_vertex = 10_000
    with QueryService(engine, max_batch_size=16, max_wait_ms=5.0) as service:
        good = service.submit(0, 24, 0.0)
        bad = service.submit(0, missing_vertex, 0.0)
        also_good = service.submit(3, 20, 30_000.0)
        service.flush()
        assert good.result(timeout=30) == engine.query(0, 24, 0.0).cost
        assert also_good.result(timeout=30) == engine.query(3, 20, 30_000.0).cost
        with pytest.raises(Exception):
            bad.result(timeout=30)


def test_engine_updates_invalidate_service_cache(graph):
    """Invalidation hooks work through the engine adapter, not just the index."""
    private_graph = grid_network(4, 4, num_points=3, seed=13)
    engine = create_engine("td-appro?budget_fraction=0.4", private_graph)
    with QueryService(engine, max_batch_size=4, max_wait_ms=5.0) as service:
        before = service.query(0, 15, 0.0)
        assert service.stats().cache_entries > 0
        u, v, weight = next(iter(private_graph.edges()))
        from repro.functions import PiecewiseLinearFunction

        engine.update_edges(
            {
                (u, v): PiecewiseLinearFunction(
                    weight.times, weight.costs * 3.0, weight.via, validate=False
                )
            }
        )
        stats = service.stats()
        assert stats.cache_invalidations == 1
        after = service.query(0, 15, 0.0)
        assert after == engine.query(0, 15, 0.0).cost
        assert before == pytest.approx(before)  # sanity: original answer intact


def test_service_stats_track_loop_flush_batches(graph):
    engine = create_engine("td-dijkstra", graph)
    with QueryService(engine, max_batch_size=4, max_wait_ms=60_000.0) as service:
        workload = _workload(graph, count=8, seed=1)
        futures = [service.submit(s, t, d) for s, t, d in workload]
        for future in futures:
            future.result(timeout=30)
        stats = service.stats()
    assert stats.queries_answered == 8
    assert stats.num_batches == 2  # two full size-triggered flushes
    assert stats.avg_batch_size == 4.0


def test_disconnected_error_type_preserved_in_loop_flush():
    from repro.functions import PiecewiseLinearFunction
    from repro.graph import TDGraph

    graph = TDGraph()
    graph.add_edge(0, 1, PiecewiseLinearFunction.constant(10.0))
    graph.add_edge(2, 1, PiecewiseLinearFunction.constant(10.0))
    engine = create_engine("td-dijkstra", graph)
    with QueryService(engine, max_batch_size=2, max_wait_ms=5.0) as service:
        future = service.submit(0, 2, 0.0)
        service.flush()
        with pytest.raises(DisconnectedQueryError):
            future.result(timeout=30)
