"""Tests for the experiment measurement helpers."""

from __future__ import annotations

import pytest

from repro.datasets import generate_queries
from repro.exceptions import DatasetError
from repro.experiments import (
    METHODS,
    build_method,
    measure_build,
    measure_cost_queries,
    measure_profile_queries,
)


class TestMethodRegistry:
    def test_all_paper_methods_registered(self):
        assert set(METHODS) == {
            "TD-G-tree",
            "TD-H2H",
            "TD-basic",
            "TD-dp",
            "TD-appro",
            "TD-Dijkstra",
            "TD-A*",
        }

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(DatasetError):
            build_method("TD-unknown", small_grid)

    @pytest.mark.parametrize("name", ["TD-basic", "TD-Dijkstra", "TD-A*"])
    def test_cheap_methods_build_and_answer(self, small_grid, name):
        engine = build_method(name, small_grid)
        assert engine.query(0, 24, 3_600.0).cost > 0

    def test_budgeted_method_accepts_fraction(self, small_grid):
        index = build_method("TD-appro", small_grid, budget_fraction=0.2)
        assert len(index.shortcuts) > 0

    def test_gtree_ignores_budget_kwargs(self, small_grid):
        engine = build_method("TD-G-tree", small_grid, budget_fraction=0.2, leaf_size=8)
        assert engine.query(0, 24, 0.0).cost > 0


class TestMeasurements:
    def test_measure_build_records_time_and_memory(self, small_grid):
        measurement = measure_build("TD-basic", small_grid, dataset="TEST", num_points=3)
        assert measurement.build_seconds > 0
        assert measurement.memory_mb > 0
        assert measurement.method == "TD-basic"
        assert measurement.index is not None

    def test_measure_cost_queries(self, small_grid, basic_index):
        workload = generate_queries(small_grid, num_pairs=5, num_intervals=2, seed=0)
        measurement = measure_cost_queries(
            basic_index, workload, method="TD-basic", dataset="TEST"
        )
        assert measurement.num_queries == 10
        assert measurement.mean_ms > 0
        assert measurement.kind == "cost"

    def test_measure_profile_queries(self, small_grid, basic_index):
        workload = generate_queries(small_grid, num_pairs=4, num_intervals=2, seed=0)
        measurement = measure_profile_queries(basic_index, workload.pairs()[:3])
        assert measurement.num_queries == 3
        assert measurement.kind == "profile"
        assert measurement.total_seconds >= 0

    def test_empty_batch_does_not_crash(self, basic_index):
        measurement = measure_cost_queries(basic_index, [])
        assert measurement.num_queries == 0
        assert measurement.mean_ms < 0.01  # only timer overhead, no division error
