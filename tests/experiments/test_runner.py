"""Tests for the per-table/figure experiment runners.

Each runner is exercised in a heavily reduced configuration (smallest dataset,
few queries, short sweeps): the goal here is to verify that every experiment
of the paper can be regenerated end-to-end and produces rows of the expected
shape, while the benchmarks under ``benchmarks/`` run the fuller versions.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_table,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_simplification_ablation,
    run_table2,
    run_table3,
    run_table4,
    run_utility_ablation,
)


pytestmark = pytest.mark.experiment


class TestTableRunners:
    def test_table2_rows(self):
        rows = run_table2(datasets=("CAL",))
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "CAL"
        assert row["paper_vertices"] == 21_048
        assert row["scaled_vertices"] > 0
        assert row["treewidth"] >= 1
        assert row["treeheight"] >= 2
        assert row["scaled_budget_N"] > 0
        assert "CAL" in format_table(rows)

    def test_table3_shapes_and_ordering(self):
        rows = run_table3(num_pairs=6, num_intervals=2, profile_pairs=2)
        by_method = {row["method"]: row for row in rows}
        assert set(by_method) == {"TD-G-tree", "TD-H2H", "TD-basic"}
        # The paper's qualitative ordering on CAL: TD-H2H answers cost queries
        # fastest; TD-basic is cheapest to build and smallest in memory but has
        # the slowest cost-function queries.
        assert by_method["TD-H2H"]["cost_query_ms"] <= by_method["TD-basic"]["cost_query_ms"]
        assert by_method["TD-basic"]["memory_mb"] <= by_method["TD-H2H"]["memory_mb"]
        assert (
            by_method["TD-basic"]["profile_query_ms"]
            >= by_method["TD-H2H"]["profile_query_ms"]
        )

    def test_table4_skips_h2h_like_the_paper(self):
        rows = run_table4(num_pairs=4, num_intervals=2, profile_pairs=1)
        by_method = {row["method"]: row for row in rows}
        assert by_method["TD-H2H"]["cost_query_ms"] == "N/A"
        assert by_method["TD-basic"]["construction_s"] != "N/A"


class TestFigureRunners:
    def test_fig8_reduced_sweep(self):
        rows = run_fig8(
            datasets=("CAL",),
            c_values=(2, 3),
            num_pairs=5,
            num_intervals=2,
            profile_pairs=2,
        )
        assert {row["c"] for row in rows} == {2, 3}
        assert {row["method"] for row in rows} == {"TD-G-tree", "TD-basic", "TD-H2H"}
        for row in rows:
            assert row["cost_query_ms"] > 0
            assert row["profile_query_ms"] > 0

    def test_fig9_reports_construction_and_memory(self):
        rows = run_fig9(datasets=("CAL",), c_values=(3,), methods=("TD-appro",))
        assert len(rows) == 1
        assert rows[0]["construction_s"] > 0
        assert rows[0]["memory_mb"] > 0

    def test_fig10_update_cost_grows_with_changes(self):
        rows = run_fig10(dataset="CAL", update_counts=(2, 40), num_points=3)
        assert len(rows) == 2
        assert rows[0]["num_updated_edges"] == 2
        assert rows[1]["num_updated_edges"] == 40
        assert all(row["update_seconds"] > 0 for row in rows)
        # More changed edges never touch fewer labels.
        assert rows[1]["dirty_vertices"] >= rows[0]["dirty_vertices"]

    def test_fig11_memory_grows_with_budget(self):
        rows = run_fig11(
            dataset="CAL",
            budget_fractions=(0.1, 0.5),
            num_pairs=5,
            num_intervals=2,
            profile_pairs=2,
        )
        assert len(rows) == 2
        assert rows[1]["memory_mb"] > rows[0]["memory_mb"]
        assert rows[1]["selected_pairs"] > rows[0]["selected_pairs"]
        assert rows[1]["budget_N"] > rows[0]["budget_N"]


class TestAblations:
    def test_utility_ablation_rows(self):
        rows = run_utility_ablation(
            dataset="CAL", budget_fraction=0.3, num_pairs=5, num_intervals=2
        )
        labels = [row["utility"] for row in rows]
        assert labels[0].startswith("paper")
        assert len(rows) == 3
        assert all(row["cost_query_ms"] > 0 for row in rows)

    def test_simplification_ablation_rows(self):
        rows = run_simplification_ablation(
            dataset="CAL",
            max_points_values=(8, None),
            num_pairs=4,
            num_intervals=2,
            accuracy_pairs=4,
        )
        by_cap = {row["max_points"]: row for row in rows}
        assert set(by_cap) == {8, "exact"}
        # The exact configuration has zero error and at least as much memory.
        assert by_cap["exact"]["max_relative_error"] <= 1e-9
        assert by_cap["exact"]["memory_mb"] >= by_cap[8]["memory_mb"]
        assert by_cap[8]["max_relative_error"] < 0.05
