"""Tests for the experiment reporting helpers."""

from __future__ import annotations

from repro.experiments import format_series, format_table, rows_to_csv, write_csv


ROWS = [
    {"dataset": "CAL", "method": "TD-appro", "c": 2, "time_ms": 1.234},
    {"dataset": "CAL", "method": "TD-appro", "c": 3, "time_ms": 2.5},
    {"dataset": "CAL", "method": "TD-G-tree", "c": 2, "time_ms": 4.0},
]


class TestFormatTable:
    def test_contains_every_cell(self):
        text = format_table(ROWS)
        assert "TD-G-tree" in text
        assert "1.234" in text
        assert "dataset" in text

    def test_title_and_alignment(self):
        text = format_table(ROWS, title="Fig 8")
        lines = text.splitlines()
        assert lines[0] == "Fig 8"
        # All data lines have the same width as the header line.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_column_subset(self):
        text = format_table(ROWS, columns=["method", "time_ms"])
        assert "dataset" not in text
        assert "TD-appro" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_format(self):
        text = format_table(ROWS, float_format="{:.1f}")
        assert "1.2" in text
        assert "1.234" not in text


class TestCsv:
    def test_rows_to_csv_round_trip(self):
        csv_text = rows_to_csv(ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "dataset,method,c,time_ms"
        assert len(lines) == 4

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(ROWS, path)
        assert path.read_text().startswith("dataset,method")


class TestFormatSeries:
    def test_one_line_per_series(self):
        text = format_series(ROWS, x="c", y="time_ms", series="method")
        lines = text.splitlines()
        assert len(lines) == 2
        assert any(line.startswith("TD-appro:") for line in lines)
        assert any(line.startswith("TD-G-tree:") for line in lines)

    def test_points_are_y_at_x(self):
        text = format_series(ROWS, x="c", y="time_ms", series="method")
        assert "1.234@2" in text
        assert "2.500@3" in text
