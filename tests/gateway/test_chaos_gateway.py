"""Chaos: kill replica workers under the gateway, watched from the HTTP edge.

The serving-layer guarantee (tests/serving/test_replica.py) is that a
killed worker fails in-flight queries with ``WorkerCrashedError`` and is
respawned from the snapshot.  This suite asserts the same story *as an
HTTP client sees it*, in three escalating scenarios:

* a survivable kill mid-load — every request settles (no hung
  connections), any surfaced failure is a typed retryable 5xx, the worker
  respawns, and answers stay bit-identical throughout.  The serving layer
  often masks the crash entirely (the failed batch degrades to per-query
  calls against the respawned worker), so surfaced failures are asserted
  *when present*, never required;
* an unsurvivable kill — the snapshot is destroyed first so the respawn
  cannot succeed: typed retryable 5xx bodies are then *guaranteed* at the
  edge, supervision escalates, and a swap over HTTP restores service;
* a closed host — the edge answers typed 503s instead of hanging or 404ing.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import time

import numpy as np
import pytest

from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayConfig,
    serve_in_background,
)
from repro.obs import Observability
from repro.serving import EngineHost
from repro.serving.supervision import HealthState

#: Statuses the edge may legitimately answer during a worker crash.
ALLOWED_FAILURE_STATUSES = {503, 504}
#: Error types a crash may legitimately surface as.
ALLOWED_FAILURE_TYPES = {
    "WorkerCrashedError",
    "DeadlineExceededError",
    "ServiceClosedError",
}
#: Per-request deadline — bounds how long a request can sit against a dead
#: worker before the host settles it with DeadlineExceededError.
REQUEST_TIMEOUT_MS = 2_000.0
#: Hard settle bound per request; tripping it means a hung connection.
SETTLE_TIMEOUT_S = 15.0

LOOSE_EDGE = GatewayConfig(rate_limit_qps=1e6, rate_limit_burst=1_000_000)


def _pairs(graph, count, seed):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return [
        (int(s), int(t), float(d))
        for s, t, d in zip(
            rng.choice(vertices, count),
            rng.choice(vertices, count),
            rng.uniform(0.0, 86_400.0, count),
        )
    ]


def _wait_for_exit(pid, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except OSError:
            return
        time.sleep(0.05)


async def _settled_request(client, payload):
    """One request that MUST settle; returns (status, error_detail|None, cost|None)."""
    response = await asyncio.wait_for(
        client.request(
            "POST",
            "/v1/query",
            payload=payload,
            headers={"timeout-ms": f"{REQUEST_TIMEOUT_MS:g}"},
        ),
        timeout=SETTLE_TIMEOUT_S,
    )
    if response.status == 200:
        return 200, None, response.json()["cost"]
    return response.status, response.json()["error"], None


async def _load_worker(handle, pairs, results, stop):
    """One simulated user: sequential queries on one connection until told
    to stop, recording how every single request settled."""
    async with GatewayClient(handle.host, handle.port) as client:
        index = 0
        while not stop.is_set():
            source, target, departure = pairs[index % len(pairs)]
            index += 1
            try:
                status, detail, cost = await _settled_request(
                    client,
                    {"source": source, "target": target, "departure": departure},
                )
            except asyncio.TimeoutError:
                results.append(("hung", None, None, None))
                return
            except (ConnectionError, asyncio.IncompleteReadError) as exc:
                results.append(("dropped", type(exc).__name__, None, None))
                return
            results.append((status, detail, (source, target, departure), cost))
            await asyncio.sleep(0)


class TestSurvivableKill:
    """SIGKILL the only replica mid-load; the snapshot is intact, so the
    pool self-heals.  The edge contract: nothing hangs, nothing drops,
    failures (if the recovery race surfaces any) are typed and retryable,
    and successes stay bit-identical."""

    def test_worker_kill_mid_load(self, basic_index, tmp_path):
        snapshot = basic_index.save(tmp_path / "snap")
        pairs = _pairs(basic_index.graph, 64, seed=23)
        host = EngineHost(max_wait_ms=1.0, cache_size=0, obs=Observability())
        host.deploy("prod", f"snapshot:{snapshot}", replicas=1)
        app = GatewayApp(host, config=LOOSE_EDGE)
        results: list[tuple] = []
        try:
            with serve_in_background(app) as handle:
                old_pid = asyncio.run(self._drive(handle, host, pairs, results))
                self._assert_edge_contract(results, basic_index)

                # The worker came back (inline self-heal or host.check()).
                replica = host.replicas("prod")[0]
                assert replica.alive and replica.pid != old_pid
                # Clean passes settle the deployment HEALTHY.
                for _ in range(4):
                    host.check()
                assert host.health("prod").state is HealthState.HEALTHY

                # And the edge serves bit-identical answers again.
                source, target, departure = pairs[0]

                async def _final():
                    async with GatewayClient(handle.host, handle.port) as c:
                        return await _settled_request(
                            c,
                            {
                                "source": source,
                                "target": target,
                                "departure": departure,
                            },
                        )

                status, _, cost = asyncio.run(_final())
                assert status == 200
                assert cost == basic_index.query(source, target, departure).cost
        finally:
            host.close()

    async def _drive(self, handle, host, pairs, results):
        stop = asyncio.Event()
        workers = [
            asyncio.create_task(
                _load_worker(handle, pairs[i::8], results, stop)
            )
            for i in range(8)
        ]
        await asyncio.sleep(0.2)  # let the load establish
        victim = host.replicas("prod")[0]
        os.kill(victim.pid, signal.SIGKILL)
        await asyncio.to_thread(_wait_for_exit, victim.pid)
        # Supervise like a production control loop; the pool may have
        # already self-healed inline, in which case check() sees nothing.
        for _ in range(40):
            await asyncio.to_thread(host.check)
            if host.replicas("prod")[0].alive:
                break
            await asyncio.sleep(0.05)
        await asyncio.sleep(0.3)  # post-recovery successes land
        stop.set()
        await asyncio.gather(*workers)
        return victim.pid

    def _assert_edge_contract(self, results, basic_index):
        assert results, "the load generator recorded nothing"
        hung = [r for r in results if r[0] == "hung"]
        dropped = [r for r in results if r[0] == "dropped"]
        assert not hung, f"{len(hung)} requests never settled"
        assert not dropped, f"connections dropped: {dropped[:3]}"
        failures = [r for r in results if r[0] != 200]
        for status, detail, _, _ in failures:
            assert status in ALLOWED_FAILURE_STATUSES, (status, detail)
            assert detail["retryable"] is True
            assert detail["status"] == status
            assert detail["type"] in ALLOWED_FAILURE_TYPES, detail
        successes = [r for r in results if r[0] == 200]
        assert successes
        for _, _, (source, target, departure), cost in successes[:50]:
            assert cost == basic_index.query(source, target, departure).cost


class TestUnsurvivableKill:
    """Destroy the snapshot, then SIGKILL the only worker: the respawn
    cannot succeed, so typed retryable 5xx bodies are *guaranteed* at the
    edge.  Supervision escalates, and a swap restores service once the
    snapshot is back."""

    def test_kill_without_snapshot_surfaces_typed_503s_then_swap_recovers(
        self, basic_index, tmp_path
    ):
        snapshot = basic_index.save(tmp_path / "snap")
        hidden = tmp_path / "hidden"
        source, target, departure = _pairs(basic_index.graph, 1, seed=7)[0]
        payload = {"source": source, "target": target, "departure": departure}
        expected = basic_index.query(source, target, departure).cost
        host = EngineHost(max_wait_ms=1.0, cache_size=0, obs=Observability())
        host.deploy("prod", f"snapshot:{snapshot}", replicas=1)
        app = GatewayApp(host, config=LOOSE_EDGE)
        try:
            with serve_in_background(app) as handle:

                async def scenario():
                    async with GatewayClient(handle.host, handle.port) as client:
                        status, _, cost = await _settled_request(client, payload)
                        assert status == 200 and cost == expected

                        # Make the crash unsurvivable, then crash it.
                        shutil.move(str(snapshot), str(hidden))
                        victim = host.replicas("prod")[0]
                        os.kill(victim.pid, signal.SIGKILL)
                        await asyncio.to_thread(_wait_for_exit, victim.pid)

                        # Every request settles as a typed, retryable 5xx —
                        # WorkerCrashedError is guaranteed to surface now.
                        seen_types = set()
                        for _ in range(6):
                            status, detail, _ = await _settled_request(
                                client, payload
                            )
                            assert status in ALLOWED_FAILURE_STATUSES, (
                                status,
                                detail,
                            )
                            assert detail["retryable"] is True
                            assert detail["type"] in ALLOWED_FAILURE_TYPES
                            seen_types.add(detail["type"])
                            reports = await asyncio.to_thread(host.check)
                            report = reports.get("prod")
                            if report is not None:
                                assert report.action in {
                                    "respawn",
                                    "restart",
                                    "rehydrate",
                                    "fallback",
                                    "park",
                                }
                        assert "WorkerCrashedError" in seen_types, seen_types
                        assert (
                            host.health("prod").state is not HealthState.HEALTHY
                        )

                        # Bring the snapshot back; a swap over HTTP restores
                        # the deployment without restarting anything.
                        shutil.move(str(hidden), str(snapshot))
                        swap = await asyncio.wait_for(
                            client.request(
                                "POST",
                                "/v1/deployments/prod/swap",
                                payload={"engine": f"snapshot:{snapshot}"},
                            ),
                            timeout=60.0,
                        )
                        assert swap.status == 200, swap.body
                        assert swap.json()["new_spec"] == f"snapshot:{snapshot}"

                        status, _, cost = await _settled_request(client, payload)
                        assert status == 200 and cost == expected
                        assert (
                            host.health("prod").state is HealthState.HEALTHY
                        )

                asyncio.run(scenario())
        finally:
            host.close()


class TestClosedHost:
    def test_closed_host_answers_typed_503_not_hangs(
        self, basic_index, tmp_path
    ):
        snapshot = basic_index.save(tmp_path / "snap")
        host = EngineHost(max_wait_ms=1.0, obs=Observability())
        host.deploy("prod", f"snapshot:{snapshot}")
        app = GatewayApp(host)
        source, target, departure = _pairs(basic_index.graph, 1, seed=5)[0]
        payload = {"source": source, "target": target, "departure": departure}
        with serve_in_background(app) as handle:

            async def _roundtrip():
                async with GatewayClient(handle.host, handle.port) as client:
                    status, _, _ = await _settled_request(client, payload)
                    assert status == 200
                    host.close()
                    status, detail, _ = await _settled_request(client, payload)
                    assert status == 503
                    assert detail["type"] == "ServiceClosedError"
                    assert detail["retryable"] is True
                    health = await client.request("GET", "/health")
                    assert health.status == 503
                    assert health.json()["status"] == "closed"

            asyncio.run(_roundtrip())
        host.close()
