"""The gateway error contract: registry completeness, MRO lookup, bodies.

The registry-style table test is the load-bearing one: it walks every
public name in :mod:`repro.exceptions` and demands an *explicit*
``STATUS_BY_ERROR`` entry for each ``ReproError`` subclass.  Adding a new
exception class without deciding its HTTP status fails this test — the
same forcing function as the pickling table test in PR 8.
"""

from __future__ import annotations

import pytest

import repro.exceptions as exceptions_module
from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    UnknownDeploymentError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.gateway import (
    RETRYABLE_STATUSES,
    STATUS_BY_ERROR,
    BadRequestError,
    error_body,
    retry_after_headers,
    status_for,
)

PUBLIC_ERROR_CLASSES = [
    getattr(exceptions_module, name)
    for name in exceptions_module.__all__
    if isinstance(getattr(exceptions_module, name), type)
    and issubclass(getattr(exceptions_module, name), BaseException)
]


class TestRegistryCompleteness:
    def test_the_public_surface_is_nonempty(self):
        # Guard against the registry test passing vacuously.
        assert len(PUBLIC_ERROR_CLASSES) >= 20

    @pytest.mark.parametrize(
        "cls", PUBLIC_ERROR_CLASSES, ids=lambda cls: cls.__name__
    )
    def test_every_public_error_has_an_explicit_status(self, cls):
        assert cls in STATUS_BY_ERROR, (
            f"{cls.__name__} has no explicit HTTP status: add it to "
            "repro.gateway.errors.STATUS_BY_ERROR (MRO fallback is for "
            "private/third-party classes, not the public surface)"
        )

    def test_gateway_own_error_is_registered(self):
        assert STATUS_BY_ERROR[BadRequestError] == 400

    def test_registry_holds_only_valid_http_statuses(self):
        for cls, status in STATUS_BY_ERROR.items():
            assert isinstance(status, int)
            assert 400 <= status <= 599, f"{cls.__name__} -> {status}"

    def test_registry_keys_are_repro_errors(self):
        for cls in STATUS_BY_ERROR:
            assert issubclass(cls, ReproError)

    def test_429_is_reserved_for_the_rate_limiter(self):
        # No exception maps to 429 — the limiter denies before any error
        # object exists, so 429 bodies are synthesised, never raised.
        assert 429 not in STATUS_BY_ERROR.values()
        assert 429 in RETRYABLE_STATUSES


class TestStatusLookup:
    def test_exact_class_match(self):
        assert status_for(UnknownDeploymentError("prod", ())) == 404
        assert status_for(DeadlineExceededError(5.0)) == 504

    def test_unlisted_subclass_inherits_parent_status(self):
        class PrivateVertexError(VertexNotFoundError):
            pass

        assert PrivateVertexError not in STATUS_BY_ERROR
        assert status_for(PrivateVertexError(3)) == 404

    def test_mro_picks_the_nearest_registered_ancestor(self):
        class NearCrash(WorkerCrashedError):
            pass

        class Nearest(NearCrash):
            pass

        # WorkerCrashedError (503) is nearer than ReproError (500).
        assert status_for(Nearest("prod", 123)) == 503

    def test_foreign_exceptions_fall_through_to_500(self):
        assert status_for(KeyError("boom")) == 500
        assert status_for(RuntimeError("boom")) == 500


class TestErrorBody:
    def test_shape_and_retryability(self):
        body = error_body(UnknownDeploymentError("prod", ("a", "b")))
        detail = body["error"]
        assert detail["type"] == "UnknownDeploymentError"
        assert detail["status"] == 404
        assert detail["retryable"] is False
        assert "prod" in detail["message"]
        assert "retry_after_ms" not in detail

    def test_retryable_statuses_flagged(self):
        body = error_body(WorkerCrashedError("prod", 41))
        assert body["error"]["status"] == 503
        assert body["error"]["retryable"] is True

    def test_retry_after_hint_is_attached_when_given(self):
        body = error_body(
            WorkerCrashedError("prod", 41), retry_after_ms=12.5
        )
        assert body["error"]["retry_after_ms"] == 12.5


class TestRetryAfterHeaders:
    def test_seconds_round_up_ms_stays_precise(self):
        headers = dict(retry_after_headers(1500.0))
        assert headers["retry-after"] == "2"
        assert headers["retry-after-ms"] == "1500"

    def test_sub_second_hints_never_round_to_zero(self):
        headers = dict(retry_after_headers(3.5))
        assert headers["retry-after"] == "1"
        assert headers["retry-after-ms"] == "3.5"

    def test_zero_and_negative_clamp_to_zero(self):
        assert dict(retry_after_headers(0.0))["retry-after"] == "0"
        assert dict(retry_after_headers(-10.0))["retry-after"] == "0"
