"""In-process ASGI driver shared by the gateway test suite.

Calling the app directly with a fabricated scope keeps the fast suite off
the network: failures point at the application, not the transport.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping


class ASGIResult:
    """A fully-drained ASGI response: status, headers, body, raw messages."""

    def __init__(self, messages: list[dict[str, Any]]) -> None:
        assert messages, "the app sent no messages"
        assert messages[0]["type"] == "http.response.start"
        self.messages = messages
        self.status = int(messages[0]["status"])
        self.headers = {
            name.decode("latin-1"): value.decode("latin-1")
            for name, value in messages[0].get("headers", [])
        }
        self.body = b"".join(bytes(m.get("body", b"")) for m in messages[1:])
        #: How many body messages arrived (streamed routes send several).
        self.body_messages = len(messages) - 1

    def json(self) -> Any:
        return json.loads(self.body)

    def ndjson(self) -> list[Any]:
        return [
            json.loads(line) for line in self.body.split(b"\n") if line.strip()
        ]


async def asgi_request(
    app: Any,
    method: str,
    path: str,
    *,
    payload: Mapping[str, Any] | None = None,
    headers: Mapping[str, str] | None = None,
) -> ASGIResult:
    """Drive one request through the bare ASGI callable."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    scope: dict[str, Any] = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": b"",
        "headers": [
            (name.lower().encode("latin-1"), value.encode("latin-1"))
            for name, value in (headers or {}).items()
        ],
        "client": ("127.0.0.1", 54321),
        "server": ("127.0.0.1", 80),
    }
    delivered = False

    async def receive() -> dict[str, Any]:
        nonlocal delivered
        if not delivered:
            delivered = True
            return {"type": "http.request", "body": body, "more_body": False}
        return {"type": "http.disconnect"}

    messages: list[dict[str, Any]] = []

    async def send(message: dict[str, Any]) -> None:
        messages.append(dict(message))

    await app(scope, receive, send)
    return ASGIResult(messages)


def call(app: Any, method: str, path: str, **kwargs: Any) -> ASGIResult:
    """Synchronous convenience wrapper around :func:`asgi_request`."""
    return asyncio.run(asgi_request(app, method, path, **kwargs))
