"""ASGI-level gateway tests: routes, guardrails, typed errors, streaming.

The app is exercised directly through fabricated ASGI scopes (no socket),
so every assertion points at application behaviour, not transport luck.
The wire layer gets its own suite in ``test_server.py``.
"""

from __future__ import annotations

import asyncio

from _asgi import asgi_request, call

from repro import create_engine
from repro.gateway import GatewayApp, GatewayConfig
from repro.obs import EVENT_GATEWAY_SHED, EVENT_RATE_LIMITED, PROMETHEUS_CONTENT_TYPE


class TestQuery:
    def test_answers_match_the_scalar_oracle_bitwise(
        self, gateway_app, small_grid
    ):
        oracle = create_engine("td-h2h", small_grid)
        vertices = sorted(small_grid.vertices())[:6]
        for source, target in zip(vertices, reversed(vertices)):
            result = call(
                gateway_app,
                "POST",
                "/v1/query",
                payload={
                    "source": source,
                    "target": target,
                    "departure": 120.5,
                },
            )
            assert result.status == 200
            expected = oracle.query(source, target, 120.5).cost
            # JSON float round-trip via repr is exact: the HTTP answer is
            # bit-identical to the in-process engine's.
            assert result.json()["cost"] == expected

    def test_response_echoes_the_resolved_request(self, gateway_app, small_grid):
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        body = result.json()
        assert body["deployment"] == "prod"
        assert body["source"] == source
        assert body["target"] == target
        assert body["departure"] == 0.0

    def test_missing_field_is_a_typed_400(self, gateway_app):
        result = call(
            gateway_app, "POST", "/v1/query", payload={"source": 0}
        )
        assert result.status == 400
        detail = result.json()["error"]
        assert detail["type"] == "BadRequestError"
        assert detail["status"] == 400
        assert detail["retryable"] is False

    def test_malformed_json_is_a_typed_400(self, gateway_app):
        async def run():
            return await asgi_request(gateway_app, "POST", "/v1/query")

        result = asyncio.run(run())
        # Empty body parses as {} → missing required fields → 400.
        assert result.status == 400
        assert result.json()["error"]["type"] == "BadRequestError"

    def test_unknown_vertex_is_a_typed_404(self, gateway_app):
        result = call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": 999_999, "target": 0, "departure": 0.0},
        )
        assert result.status == 404
        assert result.json()["error"]["type"] == "VertexNotFoundError"

    def test_unknown_deployment_is_a_typed_404(self, gateway_app):
        result = call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={
                "deployment": "nope",
                "source": 0,
                "target": 1,
                "departure": 0.0,
            },
        )
        assert result.status == 404
        assert result.json()["error"]["type"] == "UnknownDeploymentError"

    def test_sole_deployment_is_the_default(self, gateway_app, small_grid):
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        assert result.json()["deployment"] == "prod"

    def test_ambiguous_default_is_a_400(
        self, gateway_host, gateway_app, small_grid
    ):
        gateway_host.deploy("canary", "td-basic", small_grid)
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        assert result.status == 400
        assert "canary" in result.json()["error"]["message"]

    def test_configured_default_deployment_wins(
        self, gateway_host, small_grid
    ):
        gateway_host.deploy("canary", "td-basic", small_grid)
        app = GatewayApp(
            gateway_host,
            config=GatewayConfig(default_deployment="canary"),
        )
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        assert result.status == 200
        assert result.json()["deployment"] == "canary"

    def test_oversized_body_is_a_400(self, gateway_host):
        app = GatewayApp(gateway_host, config=GatewayConfig(max_body_bytes=16))
        result = call(
            app,
            "POST",
            "/v1/query",
            payload={"source": 0, "target": 1, "departure": 0.0},
        )
        assert result.status == 400
        assert "16 bytes" in result.json()["error"]["message"]


class TestBatch:
    def test_mixed_results_with_inline_typed_errors(
        self, gateway_app, small_grid
    ):
        vertices = sorted(small_grid.vertices())
        oracle = create_engine("td-h2h", small_grid)
        result = call(
            gateway_app,
            "POST",
            "/v1/batch",
            payload={
                "queries": [
                    {
                        "source": vertices[0],
                        "target": vertices[-1],
                        "departure": 60.0,
                    },
                    {"source": 777_777, "target": vertices[0], "departure": 0.0},
                    {
                        "source": vertices[1],
                        "target": vertices[2],
                        "departure": 0.0,
                    },
                ]
            },
        )
        assert result.status == 200
        body = result.json()
        assert body["answered"] == 2
        assert body["failed"] == 1
        first, second, third = body["results"]
        assert (
            first["cost"]
            == oracle.query(vertices[0], vertices[-1], 60.0).cost
        )
        assert second["error"]["type"] == "VertexNotFoundError"
        assert second["error"]["status"] == 404
        assert (
            third["cost"] == oracle.query(vertices[1], vertices[2], 0.0).cost
        )

    def test_batch_size_bound_is_a_400(self, gateway_host):
        app = GatewayApp(gateway_host, config=GatewayConfig(max_batch_queries=2))
        query = {"source": 0, "target": 1, "departure": 0.0}
        result = call(
            app, "POST", "/v1/batch", payload={"queries": [query] * 3}
        )
        assert result.status == 400
        assert result.json()["error"]["type"] == "BadRequestError"


class TestProfile:
    def test_streams_meta_then_breakpoints(self, gateway_app, small_grid):
        vertices = sorted(small_grid.vertices())
        result = call(
            gateway_app,
            "POST",
            "/v1/profile",
            payload={"source": vertices[0], "target": vertices[-1]},
        )
        assert result.status == 200
        assert result.headers["content-type"].startswith("application/x-ndjson")
        lines = result.ndjson()
        meta, points = lines[0], lines[1:]
        assert meta["deployment"] == "prod"
        assert meta["source"] == vertices[0]
        assert meta["breakpoints"] == len(points)
        assert points, "profile produced no breakpoints"
        assert all(set(p) == {"t", "cost"} for p in points)
        times = [p["t"] for p in points]
        assert times == sorted(times)

    def test_stream_is_chunked_not_buffered(self, gateway_host, small_grid):
        app = GatewayApp(gateway_host, config=GatewayConfig(profile_chunk=2))
        vertices = sorted(small_grid.vertices())
        result = call(
            app,
            "POST",
            "/v1/profile",
            payload={"source": vertices[0], "target": vertices[-1]},
        )
        assert result.status == 200
        # meta + ceil(n/2) chunks + final empty message ⇒ several messages.
        assert result.body_messages > 2

    def test_profile_matches_the_oracle_function(
        self, gateway_app, small_grid
    ):
        oracle = create_engine("td-h2h", small_grid)
        vertices = sorted(small_grid.vertices())
        source, target = vertices[0], vertices[-1]
        result = call(
            gateway_app,
            "POST",
            "/v1/profile",
            payload={"source": source, "target": target},
        )
        points = result.ndjson()[1:]
        expected = oracle.profile(source, target).function
        assert [p["t"] for p in points] == [float(t) for t in expected.times]
        assert [p["cost"] for p in points] == [
            float(c) for c in expected.costs
        ]


class TestSwap:
    def test_swap_over_http_returns_the_report(self, gateway_app):
        result = call(
            gateway_app,
            "POST",
            "/v1/deployments/prod/swap",
            payload={"engine": "td-basic"},
        )
        assert result.status == 200
        body = result.json()
        assert body["deployment"] == "prod"
        assert body["new_spec"] == "td-basic"
        assert body["old_spec"] == "td-h2h"
        assert body["total_seconds"] >= 0.0

    def test_swap_unknown_deployment_is_404(self, gateway_app):
        result = call(
            gateway_app,
            "POST",
            "/v1/deployments/ghost/swap",
            payload={"engine": "td-basic"},
        )
        assert result.status == 404
        assert result.json()["error"]["type"] == "UnknownDeploymentError"

    def test_swap_route_rejects_other_methods(self, gateway_app):
        result = call(gateway_app, "GET", "/v1/deployments/prod/swap")
        assert result.status == 405


class TestIntrospection:
    def test_deployments_listing(self, gateway_app):
        result = call(gateway_app, "GET", "/v1/deployments")
        assert result.status == 200
        (info,) = result.json()["deployments"]
        assert info["name"] == "prod"
        assert info["spec"] == "td-h2h"
        assert info["health"] == "healthy"
        assert info["replicas"] >= 0  # 0 ⇒ in-process, no replica workers

    def test_health_ok_then_closed(self, gateway_host, gateway_app):
        result = call(gateway_app, "GET", "/health")
        assert result.status == 200
        body = result.json()
        assert body["status"] == "ok"
        assert body["deployments"]["prod"]["state"] == "healthy"
        gateway_host.close()
        result = call(gateway_app, "GET", "/health")
        assert result.status == 503
        assert result.json()["status"] == "closed"

    def test_stats_cover_host_and_gateway(self, gateway_app, small_grid):
        source, target = sorted(small_grid.vertices())[:2]
        call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        result = call(gateway_app, "GET", "/stats")
        assert result.status == 200
        body = result.json()
        assert body["deployments"]["prod"]["queries_answered"] >= 1
        assert body["gateway"]["requests_total"] >= 1
        assert body["gateway"]["rate_limited_total"] == 0
        assert body["gateway"]["shed_total"] == 0
        assert body["gateway"]["in_flight"] == 0
        assert body["gateway"]["rate_limiter_clients"] >= 1

    def test_metrics_exposition(self, gateway_app, small_grid):
        source, target = sorted(small_grid.vertices())[:2]
        call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        result = call(gateway_app, "GET", "/metrics")
        assert result.status == 200
        assert result.headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        text = result.body.decode("utf-8")
        assert "repro_gateway_requests_total" in text
        assert 'route="/v1/query"' in text

    def test_unknown_route_is_a_404_with_matching_body(self, gateway_app):
        result = call(gateway_app, "GET", "/nope")
        assert result.status == 404
        assert result.json()["error"]["status"] == 404

    def test_known_path_wrong_method_is_405(self, gateway_app):
        result = call(gateway_app, "GET", "/v1/query")
        assert result.status == 405
        assert result.json()["error"]["status"] == 405


class TestEdgeGuardrails:
    def test_rate_limit_denies_with_retry_after_and_event(
        self, gateway_host, gateway_obs, small_grid
    ):
        app = GatewayApp(
            gateway_host,
            config=GatewayConfig(rate_limit_qps=1.0, rate_limit_burst=1),
        )
        source, target = sorted(small_grid.vertices())[:2]
        payload = {"source": source, "target": target, "departure": 0.0}
        first = call(app, "POST", "/v1/query", payload=payload)
        assert first.status == 200
        second = call(app, "POST", "/v1/query", payload=payload)
        assert second.status == 429
        detail = second.json()["error"]
        assert detail["type"] == "RateLimitedError"
        assert detail["retryable"] is True
        assert detail["retry_after_ms"] > 0.0
        assert int(second.headers["retry-after"]) >= 1
        assert float(second.headers["retry-after-ms"]) > 0.0
        events = gateway_obs.events.events(EVENT_RATE_LIMITED)
        assert events and events[-1].fields["route"] == "/v1/query"

    def test_rate_limit_keys_on_client_id(self, gateway_host, small_grid):
        app = GatewayApp(
            gateway_host,
            config=GatewayConfig(rate_limit_qps=1.0, rate_limit_burst=1),
        )
        source, target = sorted(small_grid.vertices())[:2]
        payload = {"source": source, "target": target, "departure": 0.0}
        assert (
            call(
                app,
                "POST",
                "/v1/query",
                payload=payload,
                headers={"x-api-key": "alice"},
            ).status
            == 200
        )
        assert (
            call(
                app,
                "POST",
                "/v1/query",
                payload=payload,
                headers={"x-api-key": "alice"},
            ).status
            == 429
        )
        # A different key has its own untouched bucket.
        assert (
            call(
                app,
                "POST",
                "/v1/query",
                payload=payload,
                headers={"x-api-key": "bob"},
            ).status
            == 200
        )

    def test_shedding_at_the_in_flight_bound(
        self, gateway_host, gateway_obs, small_grid
    ):
        app = GatewayApp(gateway_host, config=GatewayConfig(max_in_flight=0))
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        assert result.status == 503
        detail = result.json()["error"]
        assert detail["type"] == "GatewayOverloadedError"
        assert detail["retryable"] is True
        assert "retry-after" in result.headers
        events = gateway_obs.events.events(EVENT_GATEWAY_SHED)
        assert events and events[-1].fields["max_in_flight"] == 0

    def test_shedding_spares_introspection_routes(self, gateway_host):
        app = GatewayApp(gateway_host, config=GatewayConfig(max_in_flight=0))
        assert call(app, "GET", "/health").status == 200
        assert call(app, "GET", "/stats").status == 200
        assert call(app, "GET", "/metrics").status == 200

    def test_bad_timeout_header_is_a_400(self, gateway_app, small_grid):
        source, target = sorted(small_grid.vertices())[:2]
        for bad in ("nope", "-5", "0"):
            result = call(
                gateway_app,
                "POST",
                "/v1/query",
                payload={"source": source, "target": target, "departure": 0.0},
                headers={"timeout-ms": bad},
            )
            assert result.status == 400, bad
            assert result.json()["error"]["type"] == "BadRequestError"

    def test_timeout_header_propagates_to_a_504(self, small_grid):
        from repro.obs import Observability
        from repro.serving import EngineHost

        obs = Observability()
        # A long batch window forces the lone query to sit pending well past
        # the 1ms deadline the header requests.
        host = EngineHost(max_batch_size=64, max_wait_ms=300.0, obs=obs)
        host.deploy("prod", "td-h2h", small_grid)
        try:
            app = GatewayApp(host)
            source, target = sorted(small_grid.vertices())[:2]
            result = call(
                app,
                "POST",
                "/v1/query",
                payload={"source": source, "target": target, "departure": 0.0},
                headers={"timeout-ms": "1"},
            )
            assert result.status == 504
            detail = result.json()["error"]
            assert detail["type"] == "DeadlineExceededError"
            assert detail["retryable"] is True
        finally:
            host.close()


class TestObservability:
    def test_every_request_lands_in_the_trace_ring(
        self, gateway_app, gateway_obs, small_grid
    ):
        source, target = sorted(small_grid.vertices())[:2]
        call(
            gateway_app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
            headers={"x-api-key": "tracer-test"},
        )
        spans = [t for t in gateway_obs.tracer.recent(50) if t.name == "http"]
        assert spans
        span = spans[-1]
        assert span.attrs["route"] == "/v1/query"
        assert span.attrs["client"] == "tracer-test"
        assert span.attrs["status"] == 200

    def test_error_responses_trace_as_errors(self, gateway_app, gateway_obs):
        call(gateway_app, "GET", "/nope")
        spans = [t for t in gateway_obs.tracer.recent(50) if t.name == "http"]
        assert spans[-1].attrs["status"] == 404

    def test_disabled_observability_still_serves(self, gateway_host, small_grid):
        from repro.obs import Observability

        app = GatewayApp(gateway_host, obs=Observability.disabled())
        source, target = sorted(small_grid.vertices())[:2]
        result = call(
            app,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 0.0},
        )
        assert result.status == 200


class TestLifespan:
    def test_lifespan_protocol_completes(self, gateway_app):
        sent = []

        async def run():
            messages = iter(
                [
                    {"type": "lifespan.startup"},
                    {"type": "lifespan.shutdown"},
                ]
            )

            async def receive():
                return next(messages)

            async def send(message):
                sent.append(message["type"])

            await gateway_app({"type": "lifespan"}, receive, send)

        asyncio.run(run())
        assert sent == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]
