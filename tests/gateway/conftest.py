"""Shared fixtures for the gateway suite.

Two test styles share these:

* **ASGI-level** (``test_app.py``) — the app is called directly with a
  fabricated scope via :mod:`_asgi`, no socket: fast, deterministic, and
  failure messages point at the app instead of the transport.
* **Socket-level** (``test_server.py``, ``test_chaos_gateway.py``) — the
  bundled server on an ephemeral port with the bundled client: the full
  wire contract, keep-alive, chunked streaming, and chaos.
"""

from __future__ import annotations

import pytest

from repro.gateway import GatewayApp, GatewayConfig
from repro.obs import Observability
from repro.serving import EngineHost


@pytest.fixture()
def gateway_obs() -> Observability:
    """A fully isolated telemetry bundle per test."""
    return Observability()


@pytest.fixture()
def gateway_host(small_grid, gateway_obs):
    """A host with one fast deployment over the 5x5 grid."""
    host = EngineHost(max_batch_size=64, max_wait_ms=1.0, obs=gateway_obs)
    host.deploy("prod", "td-h2h", small_grid)
    yield host
    host.close()


@pytest.fixture()
def gateway_app(gateway_host) -> GatewayApp:
    """An app with guardrails loose enough to stay out of the way."""
    return GatewayApp(
        gateway_host,
        config=GatewayConfig(rate_limit_qps=10_000.0, rate_limit_burst=10_000),
    )
