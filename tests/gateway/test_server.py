"""Socket-level tests: the bundled HTTP/1.1 server + client over real TCP.

Everything here crosses a loopback socket — wire framing, keep-alive,
chunked streaming, concurrent connections, malformed bytes — the parts the
ASGI-level suite cannot see.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro import create_engine
from repro.gateway import GatewayApp, GatewayClient, serve_in_background


@pytest.fixture()
def server(gateway_app):
    handle = serve_in_background(gateway_app)
    yield handle
    handle.close()


def _request(server, method, path, **kwargs):
    async def run():
        async with GatewayClient(server.host, server.port) as client:
            return await client.request(method, path, **kwargs)

    return asyncio.run(run())


class TestWireContract:
    def test_query_over_the_socket_matches_the_oracle(
        self, server, small_grid
    ):
        oracle = create_engine("td-h2h", small_grid)
        vertices = sorted(small_grid.vertices())
        source, target = vertices[0], vertices[-1]
        response = _request(
            server,
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 42.0},
        )
        assert response.status == 200
        assert (
            response.json()["cost"] == oracle.query(source, target, 42.0).cost
        )

    def test_keep_alive_serves_many_requests_on_one_connection(
        self, server, small_grid
    ):
        vertices = sorted(small_grid.vertices())

        async def run():
            async with GatewayClient(server.host, server.port) as client:
                statuses = []
                for i in range(5):
                    response = await client.request(
                        "POST",
                        "/v1/query",
                        payload={
                            "source": vertices[i],
                            "target": vertices[-1 - i],
                            "departure": float(i),
                        },
                    )
                    statuses.append(response.status)
                return statuses

        assert asyncio.run(run()) == [200] * 5

    def test_profile_streams_chunked_over_the_wire(self, server, small_grid):
        vertices = sorted(small_grid.vertices())
        response = _request(
            server,
            "POST",
            "/v1/profile",
            payload={"source": vertices[0], "target": vertices[-1]},
        )
        assert response.status == 200
        assert response.headers.get("transfer-encoding") == "chunked"
        lines = response.ndjson()
        assert lines[0]["breakpoints"] == len(lines) - 1

    def test_error_bodies_cross_the_wire_typed(self, server):
        response = _request(
            server,
            "POST",
            "/v1/query",
            payload={"source": 999_999, "target": 0, "departure": 0.0},
        )
        assert response.status == 404
        assert response.json()["error"]["type"] == "VertexNotFoundError"

    def test_metrics_and_health_roundtrip(self, server):
        health = _request(server, "GET", "/health")
        assert health.status == 200
        assert health.json()["status"] == "ok"
        metrics = _request(server, "GET", "/metrics")
        assert metrics.status == 200
        assert b"repro_" in metrics.body

    def test_concurrent_clients_each_get_their_own_answer(
        self, server, small_grid
    ):
        vertices = sorted(small_grid.vertices())
        oracle = create_engine("td-h2h", small_grid)
        pairs = [
            (vertices[i], vertices[-1 - i], float(i * 900))
            for i in range(8)
        ]

        async def one(source, target, departure):
            async with GatewayClient(server.host, server.port) as client:
                response = await client.request(
                    "POST",
                    "/v1/query",
                    payload={
                        "source": source,
                        "target": target,
                        "departure": departure,
                    },
                )
                return response.json()["cost"]

        async def run():
            return await asyncio.gather(*(one(*p) for p in pairs))

        costs = asyncio.run(run())
        for (source, target, departure), cost in zip(pairs, costs):
            assert cost == oracle.query(source, target, departure).cost


class TestProtocolEdges:
    def test_connection_close_is_honored(self, server):
        response = _request(
            server, "GET", "/health", headers={"connection": "close"}
        )
        assert response.status == 200
        assert response.headers["connection"] == "close"

    def test_malformed_request_line_gets_400(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_unsupported_protocol_gets_400(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(b"GET /health SPDY/99\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_chunked_request_bodies_get_411(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(
                b"POST /v1/query HTTP/1.1\r\n"
                b"transfer-encoding: chunked\r\n\r\n"
            )
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 411 ")

    def test_http10_defaults_to_connection_close(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(b"GET /health HTTP/1.0\r\n\r\n")
            chunks = []
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        reply = b"".join(chunks)
        assert reply.startswith(b"HTTP/1.1 200 ")
        assert b"connection: close" in reply.lower()


class TestLifecycle:
    def test_handle_close_is_idempotent(self, gateway_app):
        handle = serve_in_background(gateway_app)
        handle.close()
        handle.close()

    def test_bind_errors_surface_on_the_caller_thread(self, gateway_app):
        with serve_in_background(gateway_app) as running:
            with pytest.raises(OSError):
                serve_in_background(gateway_app, port=running.port)

    def test_url_reports_the_bound_ephemeral_port(self, server):
        assert server.url == f"http://{server.host}:{server.port}"
        assert server.port != 0
