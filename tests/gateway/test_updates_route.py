"""``POST /v1/deployments/{name}/updates``: the live-traffic ingest route."""

from __future__ import annotations

import pytest

from repro.api import create_engine
from repro.exceptions import NoTrafficControllerError
from repro.traffic import ACTION_PATCH, FixedPolicy, TrafficController

from _asgi import call


@pytest.fixture()
def controller(gateway_host, gateway_app):
    with TrafficController(
        gateway_host, "prod", policy=FixedPolicy(ACTION_PATCH)
    ) as ctl:
        gateway_app.attach_controller(ctl)
        yield ctl


def _delay_payload(delay=60.0, **extra):
    return {"updates": [{"source": 0, "target": 1, "delay": delay}], **extra}


class TestIngest:
    def test_delay_form_is_accepted_and_queued(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload=_delay_payload(),
        )
        assert result.status == 202
        body = result.json()
        assert body["deployment"] == "prod"
        assert body["ingested"] == 1
        assert body["pending_stream"] == 1
        assert controller.stream.pending == 1

    def test_explicit_function_form(self, gateway_app, controller, small_grid):
        weight = small_grid.weight(0, 5).shift(120.0)
        payload = {
            "updates": [
                {
                    "source": 0,
                    "target": 5,
                    "times": [float(t) for t in weight.times],
                    "costs": [float(c) for c in weight.costs],
                }
            ]
        }
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates", payload=payload
        )
        assert result.status == 202
        assert result.json()["ingested"] == 1
        (queued,) = controller.stream.drain()
        assert queued.edge == (0, 5)
        assert queued.weight.allclose(weight)

    def test_apply_true_runs_a_step_and_reports_it(
        self, gateway_app, gateway_host, controller, small_grid
    ):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload=_delay_payload(delay=300.0, apply=True),
        )
        assert result.status == 200
        applied = result.json()["applied"]
        assert applied["action"] == "patch"
        assert applied["coalesced_edges"] == 1
        assert applied["staleness_max_s"] >= 0.0
        # The patch really landed: answers match a fresh-rebuild oracle.
        shadow = small_grid.copy()
        shadow.set_weight(0, 1, shadow.weight(0, 1).shift(300.0))
        oracle = create_engine("td-h2h", shadow)
        assert (
            gateway_host.query("prod", 0, 1, 0.0) == oracle.query(0, 1, 0.0).cost
        )

    def test_batched_mixed_forms(self, gateway_app, controller, small_grid):
        weight = small_grid.weight(0, 5)
        payload = {
            "updates": [
                {"source": 0, "target": 1, "delay": 60.0},
                {
                    "source": 0,
                    "target": 5,
                    "times": [float(t) for t in weight.times],
                    "costs": [float(c) for c in weight.costs],
                },
            ]
        }
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates", payload=payload
        )
        assert result.status == 202
        assert result.json()["ingested"] == 2


class TestErrors:
    def test_no_controller_attached_is_404(self, gateway_app):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload=_delay_payload(),
        )
        assert result.status == 404
        assert result.json()["error"]["type"] == "NoTrafficControllerError"

    def test_unknown_edge_is_404(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload={"updates": [{"source": 0, "target": 999, "delay": 5.0}]},
        )
        assert result.status == 404
        assert result.json()["error"]["type"] == "EdgeNotFoundError"

    def test_missing_forms_is_400(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload={"updates": [{"source": 0, "target": 1}]},
        )
        assert result.status == 400

    def test_both_forms_is_400(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload={
                "updates": [
                    {"source": 0, "target": 1, "delay": 5.0, "times": [0.0],
                     "costs": [1.0]}
                ]
            },
        )
        assert result.status == 400

    def test_invalid_function_is_400(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload={
                "updates": [
                    {"source": 0, "target": 1, "times": [0.0, 10.0],
                     "costs": [5.0, -1.0]}
                ]
            },
        )
        assert result.status == 400
        assert result.json()["error"]["type"] == "InvalidFunctionError"

    def test_empty_updates_is_400(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload={"updates": []},
        )
        assert result.status == 400

    def test_oversized_batch_is_400(self, gateway_host, controller):
        from repro.gateway import GatewayApp, GatewayConfig

        app = GatewayApp(gateway_host, config=GatewayConfig(max_updates=1))
        app.attach_controller(controller)
        result = call(
            app, "POST", "/v1/deployments/prod/updates",
            payload={
                "updates": [
                    {"source": 0, "target": 1, "delay": 1.0},
                    {"source": 1, "target": 0, "delay": 1.0},
                ]
            },
        )
        assert result.status == 400
        assert "limit" in result.json()["error"]["message"]

    def test_wrong_method_is_405(self, gateway_app, controller):
        assert call(gateway_app, "GET", "/v1/deployments/prod/updates").status == 405

    def test_nonboolean_apply_is_400(self, gateway_app, controller):
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload=_delay_payload(apply="yes"),
        )
        assert result.status == 400


class TestAttachment:
    def test_detach_unregisters(self, gateway_app, controller):
        detached = gateway_app.detach_controller("prod")
        assert detached is controller
        result = call(
            gateway_app, "POST", "/v1/deployments/prod/updates",
            payload=_delay_payload(),
        )
        assert result.status == 404

    def test_detach_unknown_raises_with_available_names(self, gateway_app):
        with pytest.raises(NoTrafficControllerError) as excinfo:
            gateway_app.detach_controller("ghost")
        assert excinfo.value.deployment == "ghost"
