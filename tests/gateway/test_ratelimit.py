"""Token-bucket rate limiter: refill physics, escalation, LRU bounds.

Every test drives the limiter with a :class:`FakeClock`, so refill timing
is exact — no sleeps, no flakes.
"""

from __future__ import annotations

import pytest

from repro.gateway import RateLimiter
from repro.gateway.ratelimit import _advisory_ms
from repro.utils.timing import FakeClock


def make_limiter(rate=10.0, burst=5, **kwargs):
    clock = FakeClock()
    limiter = RateLimiter(rate, burst, clock=clock, **kwargs)
    return limiter, clock


class TestBucketPhysics:
    def test_burst_allows_exactly_burst_then_denies(self):
        limiter, _ = make_limiter(rate=1.0, burst=3)
        verdicts = [limiter.check("alice").allowed for _ in range(5)]
        assert verdicts == [True, True, True, False, False]

    def test_allowed_decisions_carry_no_backoff(self):
        limiter, _ = make_limiter()
        decision = limiter.check("alice")
        assert decision.allowed
        assert decision.retry_after_ms == 0.0
        assert decision.denials == 0

    def test_tokens_refill_continuously(self):
        limiter, clock = make_limiter(rate=10.0, burst=1)
        assert limiter.check("alice").allowed
        assert not limiter.check("alice").allowed
        clock.advance(0.1)  # exactly one token at 10/s
        assert limiter.check("alice").allowed

    def test_refill_caps_at_burst(self):
        limiter, clock = make_limiter(rate=100.0, burst=2)
        for _ in range(2):
            assert limiter.check("alice").allowed
        clock.advance(60.0)  # would refill 6000 tokens uncapped
        verdicts = [limiter.check("alice").allowed for _ in range(3)]
        assert verdicts == [True, True, False]

    def test_retry_after_covers_time_to_next_token(self):
        limiter, clock = make_limiter(rate=2.0, burst=1)
        assert limiter.check("alice").allowed
        decision = limiter.check("alice")
        assert not decision.allowed
        # Physics floor: a full token takes 500ms at 2/s; the hint can be
        # larger (advisory) but never promises an earlier success.
        assert decision.retry_after_ms >= 500.0
        clock.advance(decision.retry_after_ms / 1000.0)
        assert limiter.check("alice").allowed

    def test_clients_have_independent_buckets(self):
        limiter, _ = make_limiter(rate=1.0, burst=1)
        assert limiter.check("alice").allowed
        assert not limiter.check("alice").allowed
        assert limiter.check("bob").allowed


class TestEscalation:
    def test_denial_streak_counts_up_and_resets(self):
        limiter, clock = make_limiter(rate=10.0, burst=1)
        assert limiter.check("alice").allowed
        streaks = [limiter.check("alice").denials for _ in range(3)]
        assert streaks == [1, 2, 3]
        clock.advance(1.0)
        assert limiter.check("alice").allowed
        assert limiter.check("alice").denials == 1  # streak reset

    def test_persistent_offenders_get_longer_advisories(self):
        # The advisory ladder doubles per denial, saturating at 1000ms with
        # jitter in [0.5, 1.0) — by the 10th consecutive denial the hint is
        # at least 500ms even though the physics floor is only 100ms.
        limiter, _ = make_limiter(rate=10.0, burst=1)
        limiter.check("alice")
        last = 0.0
        for _ in range(10):
            last = limiter.check("alice").retry_after_ms
        assert last >= 500.0

    def test_advisory_is_deterministic_per_client(self):
        assert _advisory_ms("alice", 4) == _advisory_ms("alice", 4)
        assert _advisory_ms("alice", 0) == 0.0

    def test_advisory_differs_across_clients(self):
        # CRC-seeded jitter decorrelates clients so a synchronized fleet of
        # rejected callers does not retry in lockstep.
        hints = {_advisory_ms(f"client-{i}", 3) for i in range(8)}
        assert len(hints) > 1

    def test_advisory_streak_is_clamped(self):
        # Huge streaks must not make the hint (or the work) unbounded.
        assert _advisory_ms("alice", 10_000) == _advisory_ms("alice", 16)
        assert _advisory_ms("alice", 10_000) <= 1000.0

    def test_full_decision_sequence_is_reproducible(self):
        def run():
            limiter, clock = make_limiter(rate=5.0, burst=2)
            out = []
            for i in range(20):
                decision = limiter.check("alice")
                out.append((decision.allowed, decision.retry_after_ms))
                clock.advance(0.05 * (i % 3))
            return out

        assert run() == run()


class TestBoundedState:
    def test_lru_eviction_bounds_the_bucket_map(self):
        limiter, _ = make_limiter(max_clients=2)
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")
        assert len(limiter) == 2

    def test_recently_seen_clients_survive_eviction(self):
        limiter, _ = make_limiter(rate=1.0, burst=3, max_clients=2)
        limiter.check("a")
        limiter.check("b")
        limiter.check("a")  # refresh a; b is now least-recent
        limiter.check("c")  # evicts b
        # a kept its partially drained bucket: one token left of burst=3.
        assert limiter.check("a").allowed
        assert not limiter.check("a").allowed

    def test_evicted_clients_restart_with_a_full_bucket(self):
        limiter, _ = make_limiter(rate=1.0, burst=1, max_clients=1)
        assert limiter.check("a").allowed
        assert not limiter.check("a").allowed
        limiter.check("b")  # evicts a
        assert limiter.check("a").allowed  # fresh bucket, full burst

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_second": 0.0},
            {"rate_per_second": -1.0},
            {"burst": 0},
            {"max_clients": 0},
        ],
        ids=["zero-rate", "negative-rate", "zero-burst", "zero-clients"],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        merged = {"rate_per_second": 1.0, "burst": 1, **kwargs}
        with pytest.raises(ValueError):
            RateLimiter(
                merged.pop("rate_per_second"), merged.pop("burst"), **merged
            )
