"""Unit tests for the TFP tree decomposition (Algorithms 1 and 2)."""

from __future__ import annotations

import pytest

from repro.baselines import profile_search
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph import TDGraph, paper_example_graph
from repro.core import TFPTreeDecomposition, decompose


class TestStructuralProperties:
    def test_one_node_per_vertex(self, small_grid, small_tree):
        assert small_tree.num_nodes == small_grid.num_vertices
        assert set(small_tree.nodes) == set(small_grid.vertices())

    def test_decomposition_covers_every_edge(self, small_grid, small_tree):
        """Definition 3 property (2): every edge appears inside some bag."""
        for u, v, _ in small_grid.edges():
            covered = v in set(small_tree.nodes[u].bag) | {u} or u in set(
                small_tree.nodes[v].bag
            ) | {v}
            assert covered, (u, v)

    def test_bag_vertices_are_ancestors(self, small_tree):
        """Property 2: X(v) \\ {v} is a subset of Anc(X(v))."""
        for vertex, node in small_tree.nodes.items():
            ancestors = set(small_tree.ancestors(vertex))
            assert set(node.bag) <= ancestors

    def test_connected_subtree_property(self, small_tree):
        """Definition 3 property (3): nodes containing a vertex form a subtree.

        Equivalent check: for every vertex ``u`` and every tree node whose bag
        contains ``u``, the node is a descendant of ``X(u)``.
        """
        for vertex, node in small_tree.nodes.items():
            for bag_vertex in node.bag:
                assert small_tree.is_ancestor(bag_vertex, vertex)

    def test_single_root(self, small_tree):
        assert len(small_tree.roots) == 1
        root = small_tree.roots[0]
        assert small_tree.nodes[root].parent is None
        assert small_tree.height(root) == 1

    def test_parent_is_smallest_order_bag_vertex(self, small_tree):
        for vertex, node in small_tree.nodes.items():
            if node.parent is None:
                continue
            orders = {u: small_tree.nodes[u].order for u in node.bag}
            assert node.parent == min(orders, key=orders.get)

    def test_children_heights(self, small_tree):
        for vertex, node in small_tree.nodes.items():
            for child in node.children:
                assert small_tree.height(child) == node.height + 1

    def test_treewidth_and_treeheight_consistency(self, small_tree):
        assert small_tree.treewidth == max(
            node.bag_size for node in small_tree.nodes.values()
        ) - 1
        assert small_tree.treeheight == max(
            node.height for node in small_tree.nodes.values()
        )
        assert 1 <= small_tree.treewidth < small_tree.num_nodes
        assert small_tree.treeheight <= small_tree.num_nodes

    def test_subtree_sizes_sum_at_root(self, small_tree):
        root = small_tree.roots[0]
        assert small_tree.subtree_size(root) == small_tree.num_nodes

    def test_elimination_orders_are_a_permutation(self, small_tree):
        orders = sorted(node.order for node in small_tree.nodes.values())
        assert orders == list(range(small_tree.num_nodes))


class TestNavigation:
    def test_ancestors_ordered_root_first(self, small_tree):
        vertex = max(small_tree.nodes, key=lambda v: small_tree.height(v))
        ancestors = small_tree.ancestors(vertex)
        heights = [small_tree.height(a) for a in ancestors]
        assert heights == sorted(heights)
        assert heights[0] == 1

    def test_root_path_starts_at_vertex(self, small_tree):
        for vertex in list(small_tree.nodes)[:5]:
            path = small_tree.root_path(vertex)
            assert path[0] == vertex
            assert path[-1] == small_tree.roots[0] or len(path) == 1

    def test_lca_of_vertex_with_itself(self, small_tree):
        vertex = next(iter(small_tree.nodes))
        assert small_tree.lca(vertex, vertex) == vertex

    def test_lca_is_common_ancestor(self, small_tree):
        vertices = sorted(small_tree.nodes)[:8]
        for a in vertices:
            for b in vertices:
                lca = small_tree.lca(a, b)
                assert small_tree.is_ancestor(lca, a)
                assert small_tree.is_ancestor(lca, b)

    def test_vertex_cut_contains_lca_bag(self, small_tree):
        vertices = sorted(small_tree.nodes)
        a, b = vertices[0], vertices[-1]
        lca = small_tree.lca(a, b)
        cut = small_tree.vertex_cut(a, b)
        assert lca in cut
        assert set(small_tree.nodes[lca].bag) <= set(cut)

    def test_child_towards(self, small_tree):
        deepest = max(small_tree.nodes, key=lambda v: small_tree.height(v))
        root = small_tree.roots[0]
        child = small_tree.child_towards(root, deepest)
        assert small_tree.nodes[child].parent == root
        assert small_tree.is_ancestor(child, deepest)

    def test_child_towards_rejects_same_vertex(self, small_tree):
        root = small_tree.roots[0]
        with pytest.raises(GraphError):
            small_tree.child_towards(root, root)

    def test_unknown_vertex_raises(self, small_tree):
        with pytest.raises(VertexNotFoundError):
            small_tree.node(10_000)


class TestTravelFunctionPreservation:
    def test_bag_functions_preserve_shortest_costs(self, small_grid, small_tree):
        """The stored Ws functions equal the true shortest travel-cost functions.

        This is the TFP property (Definition 5) restricted to the pairs the
        bags store: the working-graph weight between ``v`` and a bag vertex at
        elimination time preserves the shortest cost in the original graph
        *through already-eliminated vertices or the direct edge*; because the
        bag vertex is an ancestor, the overall shortest function can still be
        smaller, so the stored value must be an upper bound everywhere and
        exact somewhere... the cheap universally-true invariant is the upper
        bound, checked here against the exact profile search.
        """
        checked = 0
        for vertex, node in list(small_tree.nodes.items())[:6]:
            exact = profile_search(small_grid, vertex)
            for upper, stored in node.ws.items():
                reference = exact[upper]
                grid_diff = stored.max_difference(reference, samples=200)
                lower_violation = min(
                    float(stored.evaluate(t) - reference.evaluate(t))
                    for t in (0.0, 21_600.0, 43_200.0, 64_800.0, 86_400.0)
                )
                # Stored >= exact (never underestimates) ...
                assert lower_violation >= -1e-6
                # ... and it is not absurdly loose either (within the max cost).
                assert grid_diff <= reference.max_cost + 1e-6
                checked += 1
        assert checked > 0

    def test_label_point_and_function_counts(self, small_tree):
        assert small_tree.label_function_count() > 0
        assert small_tree.label_point_count() >= small_tree.label_function_count()


class TestEdgeCases:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            decompose(TDGraph())

    def test_single_edge_graph(self):
        from repro.functions import PiecewiseLinearFunction

        graph = TDGraph()
        graph.add_bidirectional_edge(0, 1, PiecewiseLinearFunction.constant(5.0))
        tree = decompose(graph)
        assert tree.num_nodes == 2
        assert tree.treewidth == 1
        assert tree.treeheight == 2

    def test_paper_example_statistics(self):
        """The example decomposition has small treewidth/treeheight (Fig. 3)."""
        tree = decompose(paper_example_graph(), max_points=None)
        assert tree.num_nodes == 15
        # The exact numbers depend on tie-breaking in the min-degree order;
        # the figure reports treewidth 3 and treeheight 7, so a faithful
        # decomposition must stay in that ballpark.
        assert 2 <= tree.treewidth <= 5
        assert 4 <= tree.treeheight <= 10

    def test_build_classmethod_matches_function(self, small_grid):
        tree = TFPTreeDecomposition.build(small_grid, max_points=16)
        assert tree.num_nodes == small_grid.num_vertices

    def test_max_points_caps_bag_functions(self, small_grid):
        tree = decompose(small_grid, max_points=6)
        for node in tree.nodes.values():
            for func in list(node.ws.values()) + list(node.wd.values()):
                assert func.size <= 6
