"""Tests for the shortcut-selection algorithms (Algorithms 4 and 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import (
    SelectionResult,
    budget_from_fraction,
    select_all,
    select_dp,
    select_greedy,
    select_none,
)
from repro.core.shortcuts import ShortcutCatalog, ShortcutPair
from repro.exceptions import SelectionError
from repro.functions import PiecewiseLinearFunction


def make_catalog(items: list[tuple[float, int]]) -> ShortcutCatalog:
    """Build a synthetic catalog from (utility, weight) tuples.

    Weights are realised as interpolation-point counts split across the two
    directions of each pair, so ``pair.weight`` equals the requested weight.
    """
    pairs = {}
    for index, (utility, weight) in enumerate(items):
        forward_points = max(1, weight - 1)
        backward_points = weight - forward_points
        forward = PiecewiseLinearFunction(
            np.arange(forward_points, dtype=float),
            np.full(forward_points, 10.0),
            validate=False,
        )
        backward = (
            PiecewiseLinearFunction(
                np.arange(backward_points, dtype=float),
                np.full(backward_points, 10.0),
                validate=False,
            )
            if backward_points
            else None
        )
        lower, upper = index + 100, index
        pairs[(lower, upper)] = ShortcutPair(
            lower=lower, upper=upper, forward=forward, backward=backward, utility=utility
        )
    return ShortcutCatalog(pairs)


def brute_force_optimum(items: list[tuple[float, int]], budget: int) -> float:
    best = 0.0
    for mask in range(1 << len(items)):
        utility = weight = 0
        for bit, (u, w) in enumerate(items):
            if mask >> bit & 1:
                utility += u
                weight += w
        if weight <= budget:
            best = max(best, utility)
    return best


class TestSelectionBasics:
    def test_select_all_and_none(self):
        catalog = make_catalog([(5.0, 3), (2.0, 4)])
        everything = select_all(catalog)
        nothing = select_none(catalog)
        assert everything.num_selected == 2
        assert everything.total_weight == catalog.total_weight
        assert nothing.num_selected == 0
        assert nothing.total_utility == 0.0

    def test_budget_from_fraction(self):
        catalog = make_catalog([(5.0, 10), (2.0, 10)])
        assert budget_from_fraction(catalog, 0.5) == 10
        assert budget_from_fraction(catalog, 0.0) == 0
        with pytest.raises(SelectionError):
            budget_from_fraction(catalog, 1.5)

    def test_negative_budget_rejected(self):
        catalog = make_catalog([(5.0, 3)])
        with pytest.raises(SelectionError):
            select_greedy(catalog, -1)
        with pytest.raises(SelectionError):
            select_dp(catalog, -1)

    def test_zero_budget_selects_nothing(self):
        catalog = make_catalog([(5.0, 3), (2.0, 4)])
        assert select_greedy(catalog, 0).num_selected == 0
        assert select_dp(catalog, 0).num_selected == 0


class TestDPSelection:
    def test_matches_brute_force_optimum(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            items = [
                (float(rng.integers(1, 50)), int(rng.integers(2, 12)))
                for _ in range(int(rng.integers(3, 10)))
            ]
            budget = int(rng.integers(5, 40))
            catalog = make_catalog(items)
            result = select_dp(catalog, budget)
            assert result.total_weight <= budget
            assert result.total_utility == pytest.approx(
                brute_force_optimum(items, budget)
            )

    def test_reported_weight_matches_selected_pairs(self):
        catalog = make_catalog([(10.0, 4), (9.0, 4), (1.0, 4)])
        result = select_dp(catalog, 8)
        assert result.total_weight == sum(
            catalog.pairs[key].weight for key in result.selected
        )
        assert result.total_utility == pytest.approx(
            sum(catalog.pairs[key].utility for key in result.selected)
        )

    def test_classic_knapsack_instance(self):
        # Items: (value, weight): optimal is {B, C} = 220 under capacity 50.
        catalog = make_catalog([(60.0, 10), (100.0, 20), (120.0, 30)])
        result = select_dp(catalog, 50)
        assert result.total_utility == pytest.approx(220.0)
        assert result.num_selected == 2

    def test_granularity_keeps_solution_feasible(self):
        items = [(float(i + 1), 7) for i in range(30)]
        catalog = make_catalog(items)
        exact = select_dp(catalog, 70, granularity=1)
        coarse = select_dp(catalog, 70, granularity=4)
        assert coarse.total_weight <= 70
        assert coarse.total_utility <= exact.total_utility + 1e-9
        # Coarsening by a small factor should not destroy most of the value.
        assert coarse.total_utility >= 0.6 * exact.total_utility

    def test_invalid_granularity_rejected(self):
        catalog = make_catalog([(1.0, 2)])
        with pytest.raises(SelectionError):
            select_dp(catalog, 10, granularity=0)

    def test_automatic_granularity_for_huge_budgets(self):
        items = [(float(i % 7 + 1), 5) for i in range(50)]
        catalog = make_catalog(items)
        result = select_dp(catalog, 10_000_000, max_table_cells=100_000)
        # Everything fits under such a large budget.
        assert result.num_selected == len(items)

    def test_method_label_and_budget_recorded(self):
        catalog = make_catalog([(1.0, 2)])
        result = select_dp(catalog, 10)
        assert result.method == "dp"
        assert result.budget == 10


class TestGreedySelection:
    def test_respects_budget(self):
        rng = np.random.default_rng(3)
        items = [
            (float(rng.integers(1, 100)), int(rng.integers(2, 15))) for _ in range(40)
        ]
        catalog = make_catalog(items)
        result = select_greedy(catalog, 60)
        assert result.total_weight <= 60

    def test_achieves_half_of_optimum(self):
        """Theorem 2: the greedy pair-of-strategies is a 0.5-approximation."""
        rng = np.random.default_rng(5)
        for _ in range(12):
            items = [
                (float(rng.integers(1, 60)), int(rng.integers(2, 12)))
                for _ in range(int(rng.integers(4, 11)))
            ]
            budget = int(rng.integers(6, 45))
            catalog = make_catalog(items)
            greedy = select_greedy(catalog, budget)
            optimum = brute_force_optimum(items, budget)
            assert greedy.total_utility >= 0.5 * optimum - 1e-9

    def test_prefers_high_density_when_it_wins(self):
        # One huge-utility but huge-weight item vs many small dense ones.
        items = [(100.0, 100)] + [(30.0, 10)] * 5
        catalog = make_catalog(items)
        result = select_greedy(catalog, 50)
        assert result.total_utility == pytest.approx(150.0)

    def test_prefers_high_utility_when_it_wins(self):
        # A single high-utility item the density ordering would skip.
        items = [(100.0, 50), (10.0, 5), (10.0, 5)]
        catalog = make_catalog(items)
        result = select_greedy(catalog, 50)
        assert result.total_utility == pytest.approx(100.0)

    def test_method_label(self):
        catalog = make_catalog([(1.0, 2)])
        assert select_greedy(catalog, 10).method == "greedy"

    def test_greedy_never_beats_dp(self):
        rng = np.random.default_rng(11)
        for _ in range(8):
            items = [
                (float(rng.integers(1, 60)), int(rng.integers(2, 12)))
                for _ in range(12)
            ]
            budget = 40
            catalog = make_catalog(items)
            assert (
                select_greedy(catalog, budget).total_utility
                <= select_dp(catalog, budget).total_utility + 1e-9
            )


class TestSelectionOnRealCatalog:
    def test_dp_and_greedy_on_decomposition_catalog(self, small_tree):
        from repro.core import build_shortcut_catalog

        catalog = build_shortcut_catalog(small_tree, max_points=8)
        budget = budget_from_fraction(catalog, 0.3)
        dp = select_dp(catalog, budget)
        greedy = select_greedy(catalog, budget)
        assert dp.total_weight <= budget
        assert greedy.total_weight <= budget
        assert greedy.total_utility >= 0.5 * dp.total_utility
        assert dp.total_utility >= greedy.total_utility - 1e-9
        assert 0 < dp.num_selected < len(catalog)
