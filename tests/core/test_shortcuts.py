"""Tests for shortcut candidates (Definitions 6-7, Fact 1)."""

from __future__ import annotations

import pytest

from repro.baselines import profile_search
from repro.core import build_shortcut_catalog
from repro.core.shortcuts import ShortcutPair
from repro.functions import PiecewiseLinearFunction


@pytest.fixture(scope="module")
def exact_catalog(request):
    small_tree = request.getfixturevalue("small_tree")
    return build_shortcut_catalog(small_tree, max_points=None)


class TestCatalogStructure:
    def test_one_pair_per_node_ancestor_combination(self, small_tree, exact_catalog):
        expected = sum(len(small_tree.ancestors(v)) for v in small_tree.nodes)
        assert len(exact_catalog) == expected

    def test_pairs_point_to_ancestors(self, small_tree, exact_catalog):
        for pair in exact_catalog:
            assert small_tree.is_ancestor(pair.upper, pair.lower)
            assert pair.lower != pair.upper

    def test_weight_counts_both_directions(self, exact_catalog):
        for pair in exact_catalog:
            forward = pair.forward.size if pair.forward is not None else 0
            backward = pair.backward.size if pair.backward is not None else 0
            assert pair.weight == forward + backward

    def test_total_weight_and_utility_are_sums(self, exact_catalog):
        assert exact_catalog.total_weight == sum(p.weight for p in exact_catalog)
        assert exact_catalog.total_utility == pytest.approx(
            sum(p.utility for p in exact_catalog)
        )

    def test_get_and_function_between(self, exact_catalog):
        pair = next(iter(exact_catalog))
        assert exact_catalog.get(pair.lower, pair.upper) is pair
        assert exact_catalog.get(pair.upper, pair.lower) is None
        forward = exact_catalog.function_between(pair.lower, pair.upper)
        backward = exact_catalog.function_between(pair.upper, pair.lower)
        assert forward is pair.forward
        assert backward is pair.backward
        zero = exact_catalog.function_between(pair.lower, pair.lower)
        assert zero.evaluate(0.0) == 0.0

    def test_max_points_cap_applies_to_all_shortcuts(self, small_tree):
        catalog = build_shortcut_catalog(small_tree, max_points=6)
        for pair in catalog:
            if pair.forward is not None:
                assert pair.forward.size <= 6
            if pair.backward is not None:
                assert pair.backward.size <= 6


class TestShortcutExactness:
    def test_shortcuts_equal_true_shortest_functions(self, small_grid, exact_catalog, small_tree):
        """Fact 1 must reproduce the exact shortest travel-cost functions."""
        vertices = sorted(small_tree.nodes)[:4]
        for lower in vertices:
            exact_from = profile_search(small_grid, lower)
            for upper in small_tree.ancestors(lower):
                pair = exact_catalog.get(lower, upper)
                assert pair is not None
                assert pair.forward is not None
                assert (
                    pair.forward.max_difference(exact_from[upper], samples=300) < 1e-6
                )

    def test_backward_shortcuts_are_exact_too(self, small_grid, exact_catalog, small_tree):
        lower = sorted(small_tree.nodes, key=lambda v: -small_tree.height(v))[0]
        ancestors = small_tree.ancestors(lower)
        for upper in ancestors[-3:]:
            pair = exact_catalog.get(lower, upper)
            exact = profile_search(small_grid, upper)[lower]
            assert pair.backward.max_difference(exact, samples=300) < 1e-6

    def test_shortcut_never_below_free_flow_distance(self, exact_catalog):
        for pair in list(exact_catalog)[:50]:
            if pair.forward is not None:
                assert pair.forward.min_cost >= 0.0


class TestUtilities:
    def test_utilities_are_nonnegative(self, exact_catalog):
        assert all(pair.utility >= 0.0 for pair in exact_catalog)

    def test_utility_formula_matches_definition(self, small_tree, exact_catalog):
        """u_<i,j> = (height gap) * treewidth * p_<i,j> with p from LCA counts."""
        width = small_tree.treewidth
        total = small_tree.num_nodes
        for pair in list(exact_catalog)[:40]:
            expected_count = sum(
                1
                for k in small_tree.nodes
                if small_tree.lca(pair.lower, k) == pair.upper
            )
            expected = (
                (small_tree.height(pair.lower) - small_tree.height(pair.upper))
                * width
                * (expected_count / total)
            )
            assert pair.utility == pytest.approx(expected, rel=1e-9)

    def test_density_is_utility_per_point(self):
        pair = ShortcutPair(
            lower=1,
            upper=2,
            forward=PiecewiseLinearFunction.constant(1.0),
            backward=PiecewiseLinearFunction.from_points([(0, 1), (10, 2)]),
            utility=6.0,
        )
        assert pair.weight == 3
        assert pair.density == pytest.approx(2.0)

    def test_density_of_empty_pair_is_zero(self):
        pair = ShortcutPair(lower=1, upper=2, forward=None, backward=None, utility=5.0)
        assert pair.weight == 0
        assert pair.density == 0.0

    def test_pairs_closer_to_the_root_have_larger_height_gap_factor(
        self, small_tree, exact_catalog
    ):
        """For a fixed lower vertex, the utility's height-gap factor grows as
        the ancestor gets closer to the root (coverage may shrink, so only the
        gap factor is monotone)."""
        lower = max(small_tree.nodes, key=lambda v: small_tree.height(v))
        ancestors = small_tree.ancestors(lower)
        gaps = [small_tree.height(lower) - small_tree.height(a) for a in ancestors]
        assert gaps == sorted(gaps, reverse=True)
