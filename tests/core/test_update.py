"""Tests for incremental index maintenance under edge-weight updates."""

from __future__ import annotations

import pytest

from repro import TDTreeIndex
from repro.baselines import earliest_arrival
from repro.exceptions import EdgeNotFoundError, InvalidFunctionError
from repro.functions import PiecewiseLinearFunction
from repro.graph import WeightGenerator, grid_network


@pytest.fixture()
def fresh_index():
    """A private (mutable) index over a small grid."""
    graph = grid_network(5, 5, num_points=3, seed=51)
    index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.4, max_points=None)
    return graph, index


def scaled(weight: PiecewiseLinearFunction, factor: float) -> PiecewiseLinearFunction:
    return PiecewiseLinearFunction(weight.times, weight.costs * factor, weight.via, validate=False)


class TestUpdateValidation:
    def test_unknown_edge_rejected(self, fresh_index):
        _, index = fresh_index
        with pytest.raises(EdgeNotFoundError):
            index.update_edge(0, 23, PiecewiseLinearFunction.constant(1.0))

    def test_negative_weight_rejected(self, fresh_index):
        graph, index = fresh_index
        u, v, _ = next(iter(graph.edges()))
        bad = PiecewiseLinearFunction([0.0, 10.0], [5.0, -1.0], validate=False)
        with pytest.raises(InvalidFunctionError):
            index.update_edge(u, v, bad)

    def test_empty_update_is_a_noop(self, fresh_index):
        _, index = fresh_index
        report = index.update_edges({})
        assert report.num_changed_edges == 0
        assert report.num_dirty_vertices == 0


class TestUpdateCorrectness:
    def test_single_edge_slowdown(self, fresh_index, random_od_pairs):
        graph, index = fresh_index
        u, v, weight = sorted(graph.edges())[7]
        report = index.update_edges(
            {(u, v): scaled(weight, 4.0), (v, u): scaled(graph.weight(v, u), 4.0)}
        )
        assert report.num_changed_edges == 2
        for source, target, departure in random_od_pairs[:12]:
            reference = earliest_arrival(graph, source, target, departure)
            result = index.query(source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_speedup_update(self, fresh_index, random_od_pairs):
        """Costs can also go down; the repaired index must pick the new route."""
        graph, index = fresh_index
        u, v, weight = sorted(graph.edges())[3]
        index.update_edges(
            {(u, v): scaled(weight, 0.25), (v, u): scaled(graph.weight(v, u), 0.25)}
        )
        for source, target, departure in random_od_pairs[:12]:
            reference = earliest_arrival(graph, source, target, departure)
            result = index.query(source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_many_random_perturbations(self, fresh_index, random_od_pairs):
        import numpy as np

        graph, index = fresh_index
        rng = np.random.default_rng(9)
        generator = WeightGenerator(3, seed=99)
        edges = sorted(graph.edges())
        chosen = rng.choice(len(edges), size=20, replace=False)
        changes = {}
        for edge_index in chosen:
            u, v, weight = edges[int(edge_index)]
            changes[(u, v)] = generator.perturbed(weight, scale=0.5)
        report = index.update_edges(changes)
        assert report.num_changed_edges == len(changes)
        assert report.num_dirty_vertices > 0
        for source, target, departure in random_od_pairs[:15]:
            reference = earliest_arrival(graph, source, target, departure)
            result = index.query(source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_profile_queries_after_update(self, fresh_index):
        from repro.baselines import profile_search

        graph, index = fresh_index
        u, v, weight = sorted(graph.edges())[11]
        index.update_edges(
            {(u, v): scaled(weight, 3.0), (v, u): scaled(graph.weight(v, u), 3.0)}
        )
        reference = profile_search(graph, 0)[24]
        result = index.profile(0, 24)
        assert reference.max_difference(result.function, samples=300) < 1e-6

    def test_update_on_basic_index(self, random_od_pairs):
        """An index without shortcuts only needs its bag functions repaired."""
        graph = grid_network(5, 5, num_points=3, seed=52)
        index = TDTreeIndex.build(graph, strategy="basic", max_points=None)
        u, v, weight = sorted(graph.edges())[5]
        report = index.update_edges({(u, v): scaled(weight, 5.0)})
        assert report.num_refreshed_shortcut_pairs == 0
        for source, target, departure in random_od_pairs[:10]:
            reference = earliest_arrival(graph, source, target, departure)
            assert index.query(source, target, departure).cost == pytest.approx(
                reference.cost, rel=1e-6
            )


class TestUpdateReport:
    def test_report_counts_touched_structures(self, fresh_index):
        graph, index = fresh_index
        u, v, weight = sorted(graph.edges())[0]
        report = index.update_edge(u, v, scaled(weight, 2.0))
        assert report.num_changed_edges == 1
        assert report.seconds >= 0.0
        assert report.num_dirty_vertices >= 1

    def test_identity_update_touches_little(self, fresh_index):
        """Re-writing the same weight must not cascade into shortcut refreshes."""
        graph, index = fresh_index
        u, v, weight = sorted(graph.edges())[0]
        report = index.update_edge(u, v, weight)
        assert report.num_refreshed_shortcut_nodes == 0
