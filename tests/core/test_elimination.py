"""Scalar vs round-batched elimination: bit-identical trees, pool mechanics.

The round-batched engine (:mod:`repro.core.elimination`) promises *exact*
equivalence with the scalar reference path — same elimination orders, same
bags, same parents, and bitwise-equal ``Ws``/``Wd`` functions — on any input.
These tests pin that contract down on structured grids, random planar
networks, a scaled-dataset sample and Hypothesis-generated graphs, and cover
the :class:`~repro.core.elimination.FunctionPool` plumbing the engine runs on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TDTreeIndex
from repro.core import decompose, eliminate_batched, eliminate_scalar
from repro.core.elimination import FunctionPool
from repro.datasets import load_dataset
from repro.exceptions import InvalidFunctionError
from repro.functions import PLFBatch, PiecewiseLinearFunction
from repro.graph import (
    TDGraph,
    WeightGenerator,
    grid_network,
    paper_example_graph,
    random_geometric_network,
)


def assert_trees_identical(expected, actual) -> None:
    """Full structural + bitwise label equality of two decompositions."""
    assert set(expected.nodes) == set(actual.nodes)
    assert expected.roots == actual.roots
    for vertex in expected.nodes:
        want = expected.nodes[vertex]
        got = actual.nodes[vertex]
        assert want.bag == got.bag, vertex
        assert want.order == got.order, vertex
        assert want.parent == got.parent, vertex
        assert want.children == got.children, vertex
        for want_store, got_store in ((want.ws, got.ws), (want.wd, got.wd)):
            assert list(want_store) == list(got_store), vertex
            for upper in want_store:
                a, b = want_store[upper], got_store[upper]
                assert np.array_equal(a.times, b.times), (vertex, upper)
                assert np.array_equal(a.costs, b.costs), (vertex, upper)
                assert np.array_equal(a.via, b.via), (vertex, upper)


def both_engines(graph, **kwargs):
    return (
        decompose(graph, use_batch_kernels=False, **kwargs),
        decompose(graph, use_batch_kernels=True, **kwargs),
    )


# ----------------------------------------------------------------------
# Equivalence on structured and random networks
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("max_points", [None, 16, 32])
    def test_grid_network(self, max_points):
        graph = grid_network(5, 5, num_points=3, seed=3)
        assert_trees_identical(*both_engines(graph, max_points=max_points))

    @pytest.mark.parametrize("max_points", [None, 32])
    def test_random_planar_network(self, max_points):
        graph = random_geometric_network(70, num_points=3, seed=29)
        assert_trees_identical(*both_engines(graph, max_points=max_points))

    def test_cal_sample(self):
        graph = load_dataset("CAL", num_points=2)
        assert_trees_identical(*both_engines(graph))

    def test_paper_example_exact(self):
        assert_trees_identical(
            *both_engines(paper_example_graph(), max_points=None)
        )

    def test_tolerance_path(self):
        graph = grid_network(4, 4, num_points=4, seed=11)
        assert_trees_identical(
            *both_engines(graph, max_points=12, tolerance=1e-3)
        )

    def test_disconnected_graph(self):
        graph = TDGraph()
        for base in (0, 10):
            graph.add_bidirectional_edge(
                base, base + 1, PiecewiseLinearFunction.constant(5.0)
            )
            graph.add_bidirectional_edge(
                base + 1, base + 2, PiecewiseLinearFunction.constant(7.0)
            )
        scalar_tree, batched_tree = both_engines(graph)
        assert len(batched_tree.roots) == 2
        assert_trees_identical(scalar_tree, batched_tree)

    def test_single_edge_graph(self):
        graph = TDGraph()
        graph.add_bidirectional_edge(0, 1, PiecewiseLinearFunction.constant(5.0))
        assert_trees_identical(*both_engines(graph))

    def test_engines_report_stats(self):
        graph = grid_network(4, 4, num_points=3, seed=7)
        _, scalar_stats = eliminate_scalar(graph)
        entries, batched_stats = eliminate_batched(graph)
        assert scalar_stats.engine == "scalar"
        assert batched_stats.engine == "batched"
        assert batched_stats.num_vertices == graph.num_vertices == len(entries)
        assert batched_stats.num_fill_edges == scalar_stats.num_fill_edges > 0
        assert batched_stats.num_rounds >= 1
        assert batched_stats.largest_round >= 1
        tree = decompose(graph)
        assert tree.elimination_stats is not None
        assert tree.elimination_stats.engine == "batched"


def random_connected_graph(num_vertices: int, extra_edges: int, seed: int) -> TDGraph:
    """A random connected time-dependent graph: spanning tree + extra edges."""
    rng = np.random.default_rng(seed)
    generator = WeightGenerator(num_points=3, seed=seed)
    graph = TDGraph()
    for vertex in range(1, num_vertices):
        anchor = int(rng.integers(0, vertex))
        base = float(rng.uniform(60, 600))
        graph.add_bidirectional_edge(
            vertex, anchor, generator.profile_for(base), generator.profile_for(base)
        )
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 10 * extra_edges + 10:
        attempts += 1
        u, v = (int(x) for x in rng.integers(0, num_vertices, size=2))
        if u == v or graph.has_edge(u, v):
            continue
        base = float(rng.uniform(60, 600))
        graph.add_bidirectional_edge(
            u, v, generator.profile_for(base), generator.profile_for(base)
        )
        added += 1
    return graph


class TestEquivalenceProperties:
    @given(
        num_vertices=st.integers(min_value=2, max_value=16),
        extra_edges=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        max_points=st.sampled_from([None, 8, 32]),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_graphs_bit_identical(
        self, num_vertices, extra_edges, seed, max_points
    ):
        graph = random_connected_graph(num_vertices, extra_edges, seed)
        assert_trees_identical(*both_engines(graph, max_points=max_points))


# ----------------------------------------------------------------------
# Index-level equivalence and persistence through the batched path
# ----------------------------------------------------------------------
class TestIndexLevel:
    def test_build_strategies_identical_costs(self):
        graph = grid_network(5, 5, num_points=3, seed=3)
        rng = np.random.default_rng(7)
        vertices = np.asarray(sorted(graph.vertices()))
        sources = rng.choice(vertices, size=20)
        targets = rng.choice(vertices, size=20)
        departures = rng.uniform(0.0, 86_400.0, size=20)
        for strategy in ("basic", "dp", "approx", "full"):
            scalar_index = TDTreeIndex.build(
                graph.copy(), strategy=strategy, use_batch_kernels=False
            )
            batched_index = TDTreeIndex.build(
                graph.copy(), strategy=strategy, use_batch_kernels=True
            )
            assert_trees_identical(scalar_index.tree, batched_index.tree)
            assert np.array_equal(
                scalar_index.batch_query(sources, targets, departures).costs,
                batched_index.batch_query(sources, targets, departures).costs,
            )

    def test_snapshot_round_trip_of_batched_build(self, tmp_path):
        graph = grid_network(5, 5, num_points=3, seed=3)
        index = TDTreeIndex.build(graph, strategy="approx", use_batch_kernels=True)
        directory = index.save(tmp_path / "batched.index")
        loaded = TDTreeIndex.load(directory)
        assert_trees_identical(index.tree, loaded.tree)
        rng = np.random.default_rng(11)
        vertices = np.asarray(sorted(graph.vertices()))
        sources = rng.choice(vertices, size=15)
        targets = rng.choice(vertices, size=15)
        departures = rng.uniform(0.0, 86_400.0, size=15)
        assert np.array_equal(
            index.batch_query(sources, targets, departures).costs,
            loaded.batch_query(sources, targets, departures).costs,
        )

    def test_build_seconds_include_engine_sub_phases(self):
        graph = grid_network(4, 4, num_points=3, seed=7)
        stats = TDTreeIndex.build(graph, strategy="basic").statistics()
        assert "decomposition" in stats.phase_seconds
        assert "decomposition/assembly" in stats.phase_seconds
        assert "decomposition/kernels" in stats.phase_seconds
        # Sub-phases detail the decomposition phase; the total only counts
        # top-level phases, so it stays below the naive sum of all values.
        assert stats.total_build_seconds <= sum(stats.phase_seconds.values())
        assert stats.total_build_seconds >= stats.phase_seconds["decomposition"]

    def test_updates_after_batched_build(self):
        graph = grid_network(4, 4, num_points=3, seed=7)
        index = TDTreeIndex.build(graph, strategy="full", use_batch_kernels=True)
        source, target, weight = next(iter(graph.edges()))
        report = index.update_edges(
            {(source, target): PiecewiseLinearFunction.constant(weight.max_cost * 2)}
        )
        assert report.num_changed_edges == 1
        # The structural contributor table is cached on the tree across calls.
        assert index.tree.pair_contributors() is index.tree.pair_contributors()


# ----------------------------------------------------------------------
# FunctionPool
# ----------------------------------------------------------------------
class TestFunctionPool:
    def _functions(self, count, offset=0.0):
        return [
            PiecewiseLinearFunction(
                np.array([0.0, 10.0 + i]), np.array([offset + i, offset + i + 5.0])
            )
            for i in range(count)
        ]

    def test_append_assigns_consecutive_rows(self):
        pool = FunctionPool()
        rows = pool.append(PLFBatch.from_functions(self._functions(3)))
        assert rows.tolist() == [0, 1, 2]
        more = pool.append(PLFBatch.from_functions(self._functions(2, offset=50.0)))
        assert more.tolist() == [3, 4]
        assert pool.count == 5

    def test_take_across_chunks_preserves_order(self):
        pool = FunctionPool()
        functions = []
        for chunk in range(5):
            batch = self._functions(3, offset=100.0 * chunk)
            functions.extend(batch)
            pool.append(PLFBatch.from_functions(batch))
        rows = np.array([14, 0, 7, 7, 3])
        taken = pool.take(rows)
        for i, row in enumerate(rows):
            want = functions[int(row)]
            got = taken.function(i)
            assert np.array_equal(want.times, got.times)
            assert np.array_equal(want.costs, got.costs)

    def test_compaction_keeps_rows_stable(self):
        from repro.core import elimination

        pool = FunctionPool()
        functions = []
        for chunk in range(elimination._MAX_CHUNKS + 3):
            batch = self._functions(2, offset=10.0 * chunk)
            functions.extend(batch)
            pool.append(PLFBatch.from_functions(batch))
        assert len(pool._chunks) < elimination._MAX_CHUNKS
        for row, want in enumerate(functions):
            got = pool.function(row)
            assert np.array_equal(want.times, got.times)
            assert np.array_equal(want.costs, got.costs)

    def test_take_empty_rows(self):
        pool = FunctionPool()
        pool.append(PLFBatch.from_functions(self._functions(2)))
        assert pool.take(np.empty(0, dtype=np.int64)).count == 0

    def test_out_of_range_rows_rejected(self):
        pool = FunctionPool()
        pool.append(PLFBatch.from_functions(self._functions(2)))
        with pytest.raises(InvalidFunctionError):
            pool.take(np.array([2]))
        with pytest.raises(InvalidFunctionError):
            pool.take(np.array([-1]))
        with pytest.raises(InvalidFunctionError):
            pool.function(5)
