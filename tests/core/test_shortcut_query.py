"""Tests for the query with shortcuts (Algorithm 6) — all three regimes."""

from __future__ import annotations

import pytest

from repro.baselines import earliest_arrival, profile_search
from repro.core import (
    build_shortcut_catalog,
    select_all,
    shortcut_cost_query,
    shortcut_profile_query,
)


@pytest.fixture(scope="module")
def exact_catalog(request):
    small_tree = request.getfixturevalue("small_tree")
    return build_shortcut_catalog(small_tree, max_points=None, compute_utilities=False)


@pytest.fixture(scope="module")
def all_shortcuts(exact_catalog):
    """Every candidate materialised: forces the full-shortcut regime."""
    return dict(exact_catalog.pairs)


def _partial_store(tree, catalog, source, target, *, keep_source_side: bool) -> dict:
    """Keep only the source-side (or target-side) shortcuts towards the cut."""
    cut = tree.vertex_cut(source, target)
    store = {}
    for w in cut:
        key = (source, w) if keep_source_side else (target, w)
        pair = catalog.pairs.get(key)
        if pair is not None:
            store[key] = pair
    return store


class TestFullShortcutRegime:
    def test_matches_dijkstra(self, small_grid, small_tree, all_shortcuts, random_od_pairs):
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = shortcut_cost_query(
                small_tree, all_shortcuts, source, target, departure
            )
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_strategy_is_full(self, small_tree, all_shortcuts):
        result = shortcut_cost_query(small_tree, all_shortcuts, 0, 24, 0.0)
        assert result.strategy == "full_shortcuts"

    def test_profile_matches_profile_search(self, small_grid, small_tree, all_shortcuts):
        reference = profile_search(small_grid, 1)[23]
        result = shortcut_profile_query(small_tree, all_shortcuts, 1, 23)
        assert result.strategy == "full_shortcuts"
        assert reference.max_difference(result.function, samples=300) < 1e-6


class TestPartialShortcutRegime:
    def test_partial_source_side_still_exact(
        self, small_grid, small_tree, exact_catalog, random_od_pairs
    ):
        for source, target, departure in random_od_pairs[:12]:
            store = _partial_store(
                small_tree, exact_catalog, source, target, keep_source_side=True
            )
            reference = earliest_arrival(small_grid, source, target, departure)
            result = shortcut_cost_query(small_tree, store, source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_partial_target_side_still_exact(
        self, small_grid, small_tree, exact_catalog, random_od_pairs
    ):
        for source, target, departure in random_od_pairs[:12]:
            store = _partial_store(
                small_tree, exact_catalog, source, target, keep_source_side=False
            )
            reference = earliest_arrival(small_grid, source, target, departure)
            result = shortcut_cost_query(small_tree, store, source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_strategy_is_partial_when_some_shortcuts_exist(
        self, small_tree, exact_catalog
    ):
        source, target = 0, 24
        store = _partial_store(
            small_tree, exact_catalog, source, target, keep_source_side=True
        )
        if not store:
            pytest.skip("no source-side shortcuts intersect this cut")
        result = shortcut_cost_query(small_tree, store, source, target, 0.0)
        assert result.strategy in ("partial_shortcuts", "full_shortcuts")

    def test_partial_profile_query_exact(self, small_grid, small_tree, exact_catalog):
        source, target = 4, 20
        store = _partial_store(
            small_tree, exact_catalog, source, target, keep_source_side=True
        )
        reference = profile_search(small_grid, source)[target]
        result = shortcut_profile_query(small_tree, store, source, target)
        assert reference.max_difference(result.function, samples=300) < 1e-6


class TestEmptyShortcutRegime:
    def test_falls_back_to_basic(self, small_grid, small_tree, random_od_pairs):
        for source, target, departure in random_od_pairs[:8]:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = shortcut_cost_query(small_tree, {}, source, target, departure)
            assert result.strategy == "basic"
            assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_profile_falls_back_to_basic(self, small_grid, small_tree):
        reference = profile_search(small_grid, 3)[21]
        result = shortcut_profile_query(small_tree, {}, 3, 21)
        assert result.strategy == "basic"
        assert reference.max_difference(result.function, samples=300) < 1e-6


class TestSelectedSubsets:
    def test_random_selected_subsets_remain_exact(
        self, small_grid, small_tree, exact_catalog, random_od_pairs
    ):
        """Any subset of exact shortcuts must leave answers exact (they only
        prune and seed the traversal, never replace it with something lossy)."""
        import numpy as np

        rng = np.random.default_rng(0)
        keys = list(exact_catalog.pairs)
        for fraction in (0.1, 0.5):
            chosen = rng.choice(len(keys), size=int(len(keys) * fraction), replace=False)
            store = {keys[int(i)]: exact_catalog.pairs[keys[int(i)]] for i in chosen}
            for source, target, departure in random_od_pairs[:8]:
                reference = earliest_arrival(small_grid, source, target, departure)
                result = shortcut_cost_query(
                    small_tree, store, source, target, departure
                )
                assert result.cost == pytest.approx(reference.cost, rel=1e-6)

    def test_select_all_matches_manual_store(self, small_tree, exact_catalog):
        selection = select_all(exact_catalog)
        assert selection.selected == set(exact_catalog.pairs)
