"""Tests for the basic query algorithm (Algorithm 3) — scalar and profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import earliest_arrival, profile_search
from repro.exceptions import VertexNotFoundError
from repro.core import basic_cost_query, basic_profile_query
from repro.core.query import expand_hop


class TestScalarQueriesAgainstDijkstra:
    def test_matches_dijkstra_on_random_workload(
        self, small_grid, small_tree, random_od_pairs
    ):
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = basic_cost_query(small_tree, source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6, abs=1e-6)

    def test_source_equals_target(self, small_tree):
        result = basic_cost_query(small_tree, 3, 3, 1000.0)
        assert result.cost == 0.0
        assert result.path() == [3]

    def test_arrival_is_departure_plus_cost(self, small_tree):
        result = basic_cost_query(small_tree, 0, 24, 3600.0)
        assert result.arrival == pytest.approx(3600.0 + result.cost)

    def test_unknown_vertex_raises(self, small_tree):
        with pytest.raises(VertexNotFoundError):
            basic_cost_query(small_tree, 0, 999, 0.0)

    def test_meeting_vertex_lies_in_the_cut(self, small_tree):
        result = basic_cost_query(small_tree, 0, 24, 28_800.0)
        cut = small_tree.vertex_cut(0, 24)
        assert result.meeting_vertex in cut

    def test_strategy_label(self, small_tree):
        assert basic_cost_query(small_tree, 0, 24, 0.0).strategy == "basic"

    def test_cost_depends_on_departure_time(self, small_grid, small_tree):
        """Rush hour (08:00) must not be cheaper than the same trip at 03:00
        by more than FIFO slack — and generally the two differ."""
        costs = {
            t: basic_cost_query(small_tree, 0, 24, t).cost
            for t in (3 * 3600.0, 8 * 3600.0)
        }
        reference = {
            t: earliest_arrival(small_grid, 0, 24, t).cost for t in costs
        }
        for t, cost in costs.items():
            assert cost == pytest.approx(reference[t], rel=1e-6)


class TestPathReconstruction:
    def test_path_endpoints(self, small_tree):
        result = basic_cost_query(small_tree, 0, 24, 7_200.0, record_hops=True)
        path = result.path()
        assert path[0] == 0
        assert path[-1] == 24

    def test_path_edges_exist_in_graph(self, small_grid, small_tree, random_od_pairs):
        for source, target, departure in random_od_pairs[:10]:
            result = basic_cost_query(
                small_tree, source, target, departure, record_hops=True
            )
            path = result.path()
            for a, b in zip(path, path[1:]):
                assert small_grid.has_edge(a, b), (a, b)

    def test_path_cost_matches_reported_cost(self, small_grid, small_tree, random_od_pairs):
        """Walking the expanded path with original edge weights reproduces the cost."""
        for source, target, departure in random_od_pairs[:10]:
            result = basic_cost_query(
                small_tree, source, target, departure, record_hops=True
            )
            path = result.path()
            clock = departure
            for a, b in zip(path, path[1:]):
                clock += float(small_grid.weight(a, b).evaluate(clock))
            assert clock - departure == pytest.approx(result.cost, rel=1e-6)

    def test_expand_hop_without_tree_returns_coarse_edge(self, small_tree):
        node = small_tree.nodes[0]
        upper, func = next(iter(node.ws.items()))
        edges, arrival = expand_hop(None, 0, upper, func, 0.0)
        assert edges == [(0, upper)]
        assert arrival == pytest.approx(float(func.evaluate(0.0)))


class TestProfileQueriesAgainstProfileSearch:
    @pytest.mark.parametrize("target", [6, 12, 24])
    def test_profile_matches_label_correcting_search(self, small_grid, small_tree, target):
        reference = profile_search(small_grid, 0)[target]
        result = basic_profile_query(small_tree, 0, target)
        assert reference.max_difference(result.function, samples=400) < 1e-6

    def test_profile_source_equals_target(self, small_tree):
        result = basic_profile_query(small_tree, 5, 5)
        assert result.function.is_constant()
        assert result.function.evaluate(0.0) == 0.0

    def test_profile_cost_at_matches_scalar_query(self, small_tree):
        profile = basic_profile_query(small_tree, 0, 24)
        for departure in (0.0, 21_600.0, 43_200.0, 61_200.0):
            scalar = basic_cost_query(small_tree, 0, 24, departure)
            assert profile.cost_at(departure) == pytest.approx(scalar.cost, rel=1e-6)

    def test_profile_respects_max_points(self, small_tree):
        result = basic_profile_query(small_tree, 0, 24, max_points=8)
        assert result.function.size <= 8

    def test_best_departure_is_minimum(self, small_tree):
        profile = basic_profile_query(small_tree, 0, 24)
        departure, cost = profile.best_departure(0.0, 86_400.0, samples=300)
        grid = np.linspace(0.0, 86_400.0, 300)
        assert cost <= float(np.min(profile.function.evaluate(grid))) + 1e-9
        assert 0.0 <= departure <= 86_400.0

    def test_profile_is_fifo_and_nonnegative(self, small_tree):
        func = basic_profile_query(small_tree, 0, 24).function
        assert func.is_nonnegative()
        assert func.is_fifo(tolerance=1e-5)
