"""Tests for the :class:`TDTreeIndex` facade (build strategies, queries, stats)."""

from __future__ import annotations

import pytest

from repro import TDTreeIndex
from repro.baselines import earliest_arrival, profile_search
from repro.exceptions import (
    DisconnectedQueryError,
    GraphError,
    IndexBuildError,
    SelectionError,
)
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph


class TestBuildStrategies:
    def test_unknown_strategy_rejected(self, small_grid):
        with pytest.raises(IndexBuildError):
            TDTreeIndex.build(small_grid, strategy="magic")

    def test_budget_and_fraction_are_mutually_exclusive(self, small_grid):
        with pytest.raises(SelectionError):
            TDTreeIndex.build(
                small_grid, strategy="approx", budget=10, budget_fraction=0.5
            )

    def test_basic_has_no_shortcuts(self, basic_index):
        assert basic_index.strategy == "basic"
        assert len(basic_index.shortcuts) == 0

    def test_full_selects_every_candidate(self, full_index):
        stats = full_index.statistics()
        assert stats.num_selected_pairs == stats.num_candidate_pairs > 0

    def test_budgeted_strategies_respect_the_budget(self, approx_index, dp_index):
        for index in (approx_index, dp_index):
            stats = index.statistics()
            assert stats.budget is not None
            assert stats.selected_weight <= stats.budget
            assert 0 < stats.num_selected_pairs < stats.num_candidate_pairs

    def test_validation_rejects_disconnected_graphs(self):
        graph = TDGraph()
        weight = PiecewiseLinearFunction.constant(1.0)
        graph.add_bidirectional_edge(0, 1, weight)
        graph.add_bidirectional_edge(5, 6, weight)
        with pytest.raises(GraphError):
            TDTreeIndex.build(graph, strategy="basic")

    def test_validation_can_be_skipped(self):
        graph = TDGraph()
        weight = PiecewiseLinearFunction.constant(1.0)
        graph.add_bidirectional_edge(0, 1, weight)
        graph.add_bidirectional_edge(5, 6, weight)
        index = TDTreeIndex.build(graph, strategy="basic", validate=False)
        with pytest.raises(DisconnectedQueryError):
            index.query(0, 6, 0.0)

    def test_build_seconds_recorded_per_phase(self, approx_index):
        stats = approx_index.statistics()
        assert "decomposition" in stats.phase_seconds
        assert "shortcut_candidates" in stats.phase_seconds
        assert "selection" in stats.phase_seconds
        assert stats.total_build_seconds > 0.0

    def test_build_seconds_deprecated_alias(self, approx_index):
        stats = approx_index.statistics()
        from repro.utils.deprecation import reset_deprecation_warnings

        reset_deprecation_warnings()
        with pytest.deprecated_call():
            alias = stats.build_seconds
        assert set(alias) >= set(stats.phase_seconds)

    def test_repr(self, approx_index):
        assert "approx" in repr(approx_index)


class TestQueryCorrectness:
    @pytest.mark.parametrize(
        "index_fixture", ["basic_index", "full_index", "approx_index", "dp_index"]
    )
    def test_cost_queries_match_dijkstra(
        self, request, index_fixture, small_grid, random_od_pairs
    ):
        index = request.getfixturevalue(index_fixture)
        exact = index.max_points is None
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = index.query(source, target, departure)
            if exact:
                assert result.cost == pytest.approx(reference.cost, rel=1e-6)
            else:
                # Capped functions: small bounded deviation is allowed, and the
                # index must never report a cost below the true optimum by more
                # than numerical noise.
                assert result.cost >= reference.cost - 1e-6
                assert result.cost <= reference.cost * 1.02 + 1e-6

    @pytest.mark.parametrize("index_fixture", ["basic_index", "full_index"])
    def test_profile_queries_match_profile_search(
        self, request, index_fixture, small_grid
    ):
        index = request.getfixturevalue(index_fixture)
        reference = profile_search(small_grid, 2)[22]
        profile = index.profile(2, 22)
        assert reference.max_difference(profile.function, samples=300) < 1e-6

    def test_approx_profile_close_to_exact(self, approx_index, small_grid):
        reference = profile_search(small_grid, 2)[22]
        profile = approx_index.profile(2, 22)
        grid_error = max(
            abs(profile.function.evaluate(t) - reference.evaluate(t)) / reference.evaluate(t)
            for t in (0.0, 21_600.0, 43_200.0, 64_800.0, 86_400.0)
        )
        assert grid_error < 0.05

    def test_need_path_returns_valid_path(self, approx_index, small_grid):
        result = approx_index.query(0, 24, 30_000.0, need_path=True)
        path = result.path()
        assert path[0] == 0 and path[-1] == 24
        for a, b in zip(path, path[1:]):
            assert small_grid.has_edge(a, b)

    def test_query_same_vertex(self, approx_index):
        assert approx_index.query(7, 7, 0.0).cost == 0.0
        assert approx_index.profile(7, 7).function.evaluate(100.0) == 0.0


class TestIntrospection:
    def test_memory_breakdown_orders_strategies(self, basic_index, approx_index, full_index):
        """TD-basic < TD-appro < TD-H2H in index size (the paper's memory story)."""
        basic = basic_index.memory_breakdown().total_bytes
        approx = approx_index.memory_breakdown().total_bytes
        full = full_index.memory_breakdown().total_bytes
        assert basic < approx < full

    def test_memory_breakdown_shortcut_component(self, approx_index):
        breakdown = approx_index.memory_breakdown()
        assert breakdown.shortcut_points > 0
        assert breakdown.shortcut_functions == 2 * len(approx_index.shortcuts)

    def test_statistics_fields(self, approx_index, small_grid):
        stats = approx_index.statistics()
        assert stats.num_vertices == small_grid.num_vertices
        assert stats.num_edges == small_grid.num_edges
        assert stats.treewidth >= 1
        assert stats.treeheight >= 2
        assert stats.strategy == "approx"


class TestQuerySpeedOrdering:
    def test_shortcut_queries_use_shortcut_strategies(self, full_index):
        """With all shortcuts present, queries must take the O(w) fast path."""
        result = full_index.query(0, 24, 3_600.0)
        assert result.strategy == "full_shortcuts"

    def test_basic_index_reports_basic_strategy(self, basic_index):
        assert basic_index.query(0, 24, 3_600.0).strategy == "basic"
