"""Property-based tests for the shortcut-selection solvers.

Random knapsack instances (utilities/weights in the ranges real catalogs
produce) must satisfy, for every budget:

* feasibility — neither solver ever exceeds the budget;
* optimality — DP matches a brute-force optimum on small instances;
* the 0.5-approximation guarantee of Algorithm 5 relative to the DP optimum;
* monotonicity — a larger budget never yields a worse DP objective.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.selection import select_dp, select_greedy
from repro.core.shortcuts import ShortcutCatalog, ShortcutPair
from repro.functions import PiecewiseLinearFunction


def _catalog_from(items: list[tuple[float, int]]) -> ShortcutCatalog:
    pairs = {}
    for index, (utility, weight) in enumerate(items):
        forward_points = max(1, weight // 2)
        backward_points = weight - forward_points
        forward = PiecewiseLinearFunction(
            np.arange(forward_points, dtype=float),
            np.full(forward_points, 1.0),
            validate=False,
        )
        backward = (
            PiecewiseLinearFunction(
                np.arange(backward_points, dtype=float),
                np.full(backward_points, 1.0),
                validate=False,
            )
            if backward_points > 0
            else None
        )
        pairs[(index + 1000, index)] = ShortcutPair(
            lower=index + 1000,
            upper=index,
            forward=forward,
            backward=backward,
            utility=float(utility),
        )
    return ShortcutCatalog(pairs)


def _brute_force(items: list[tuple[float, int]], budget: int) -> float:
    best = 0.0
    for mask in range(1 << len(items)):
        utility = weight = 0
        for bit, (u, w) in enumerate(items):
            if mask >> bit & 1:
                utility += u
                weight += w
        if weight <= budget:
            best = max(best, utility)
    return best


items_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=2, max_value=20),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(items=items_strategy, budget=st.integers(min_value=0, max_value=80))
def test_both_solvers_respect_the_budget(items, budget):
    catalog = _catalog_from(items)
    for result in (select_dp(catalog, budget), select_greedy(catalog, budget)):
        assert result.total_weight <= budget
        assert result.total_weight == sum(
            catalog.pairs[key].weight for key in result.selected
        )


@settings(max_examples=40, deadline=None)
@given(items=items_strategy, budget=st.integers(min_value=1, max_value=60))
def test_dp_is_optimal_and_greedy_is_half_approximate(items, budget):
    catalog = _catalog_from(items)
    optimum = _brute_force(items, budget)
    dp = select_dp(catalog, budget)
    greedy = select_greedy(catalog, budget)
    assert dp.total_utility == pytest_approx(optimum)
    assert greedy.total_utility <= dp.total_utility + 1e-9
    assert greedy.total_utility >= 0.5 * optimum - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    items=items_strategy,
    small_budget=st.integers(min_value=0, max_value=40),
    extra=st.integers(min_value=0, max_value=40),
)
def test_dp_objective_is_monotone_in_the_budget(items, small_budget, extra):
    catalog = _catalog_from(items)
    small = select_dp(catalog, small_budget)
    large = select_dp(catalog, small_budget + extra)
    assert large.total_utility >= small.total_utility - 1e-9


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)
