"""Equivalence tests for the batched query engine and batched construction.

The contract under test is strict: :func:`batch_cost_query` must return
**bit-identical** costs to looping the scalar query functions over the same
workload, for every index flavour (no shortcuts, partial shortcuts, full
shortcuts), and the level-batched shortcut catalog must equal the scalar
reference construction function by function.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import basic_cost_query, batch_cost_query, shortcut_cost_query
from repro.core.shortcuts import build_shortcut_catalog
from repro.exceptions import DisconnectedQueryError, VertexNotFoundError
from repro.functions import PiecewiseLinearFunction
from repro import TDGraph, TDTreeIndex


def _workload(graph, count=60, seed=123):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    sources = rng.choice(vertices, count)
    targets = rng.choice(vertices, count)
    departures = rng.uniform(0.0, 86_400.0, count)
    return sources, targets, departures


# ----------------------------------------------------------------------
# batch_cost_query vs looped scalar queries
# ----------------------------------------------------------------------
def test_batch_matches_basic_loop(basic_index):
    sources, targets, departures = _workload(basic_index.graph)
    result = basic_index.batch_query(sources, targets, departures)
    expected = np.array(
        [
            basic_cost_query(basic_index.tree, int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert result.strategy == "basic"
    assert np.array_equal(result.costs, expected)
    assert np.array_equal(result.arrivals, departures + expected)


def test_batch_matches_full_shortcut_loop(full_index):
    sources, targets, departures = _workload(full_index.graph, seed=5)
    result = full_index.batch_query(sources, targets, departures)
    expected = np.array(
        [
            shortcut_cost_query(
                full_index.tree, full_index.shortcuts, int(s), int(t), float(d)
            ).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert result.strategy == "shortcuts"
    assert np.array_equal(result.costs, expected)


@pytest.mark.parametrize("fixture", ["approx_index", "dp_index"])
def test_batch_matches_partial_shortcut_loop(fixture, request):
    index = request.getfixturevalue(fixture)
    sources, targets, departures = _workload(index.graph, seed=17)
    result = index.batch_query(sources, targets, departures)
    expected = np.array(
        [
            index.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert np.array_equal(result.costs, expected)


def test_batch_repeated_calls_use_cache(approx_index):
    sources, targets, departures = _workload(approx_index.graph, count=20, seed=3)
    first = approx_index.batch_query(sources, targets, departures)
    again = approx_index.batch_query(sources, targets, departures)
    assert np.array_equal(first.costs, again.costs)
    assert approx_index._batch_query_cache  # per-pair memo populated


def test_batch_same_vertex_queries_are_zero(basic_index):
    vertices = np.asarray(sorted(basic_index.graph.vertices()))[:5]
    result = basic_index.batch_query(vertices, vertices, np.zeros(vertices.size))
    assert np.array_equal(result.costs, np.zeros(vertices.size))


def test_batch_rejects_misaligned_arrays(basic_index):
    with pytest.raises(Exception):
        basic_index.batch_query([0, 1], [2], [0.0, 1.0])


def test_batch_rejects_unknown_vertices(basic_index):
    with pytest.raises(VertexNotFoundError):
        basic_index.batch_query([0], [10_000], [0.0])


def test_batch_raises_on_disconnected_queries():
    graph = TDGraph()
    graph.add_bidirectional_edge(0, 1, PiecewiseLinearFunction.constant(10.0))
    graph.add_bidirectional_edge(2, 3, PiecewiseLinearFunction.constant(10.0))
    index = TDTreeIndex.build(graph, strategy="basic", validate=False)
    with pytest.raises(DisconnectedQueryError):
        index.batch_query([0], [3], [0.0])


def test_restricted_sweep_plan_matches_global(basic_index, approx_index, monkeypatch):
    """Large-tree mode (union-restricted sweep plans) must not change results."""
    import repro.core.query as query_module

    for index in (basic_index, approx_index):
        sources, targets, departures = _workload(index.graph, count=40, seed=21)
        expected = index.batch_query(sources, targets, departures).costs
        monkeypatch.setattr(query_module, "_GLOBAL_PLAN_MAX_ROWS", 1)
        index._batch_query_cache.clear()
        restricted = index.batch_query(sources, targets, departures).costs
        monkeypatch.undo()
        assert np.array_equal(expected, restricted)


def test_module_level_batch_query_matches_index(basic_index):
    sources, targets, departures = _workload(basic_index.graph, count=15, seed=9)
    via_index = basic_index.batch_query(sources, targets, departures)
    via_module = batch_cost_query(basic_index.tree, sources, targets, departures)
    assert np.array_equal(via_index.costs, via_module.costs)


# ----------------------------------------------------------------------
# Batched construction vs scalar reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("max_points", [None, 16])
def test_batched_catalog_equals_scalar_reference(small_tree, max_points):
    scalar = build_shortcut_catalog(
        small_tree, max_points=max_points, use_batch_kernels=False
    )
    batched = build_shortcut_catalog(
        small_tree, max_points=max_points, use_batch_kernels=True
    )
    assert set(scalar.pairs) == set(batched.pairs)
    for key, expected in scalar.pairs.items():
        actual = batched.pairs[key]
        assert expected.utility == actual.utility
        for reference, candidate in (
            (expected.forward, actual.forward),
            (expected.backward, actual.backward),
        ):
            assert (reference is None) == (candidate is None)
            if reference is None:
                continue
            assert np.array_equal(reference.times, candidate.times)
            assert np.array_equal(reference.costs, candidate.costs)
            assert np.array_equal(reference.via, candidate.via)


# ----------------------------------------------------------------------
# Cache invalidation under updates
# ----------------------------------------------------------------------
def test_batch_query_consistent_after_update(small_grid):
    # Private copy: the update below must not leak into the shared fixture.
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=16
    )
    sources, targets, departures = _workload(index.graph, count=30, seed=31)
    index.batch_query(sources, targets, departures)  # warm every cache

    edges = list(index.graph.edges())
    u, v, weight = edges[0]
    index.update_edge(u, v, weight.shift(250.0))

    after_batch = index.batch_query(sources, targets, departures)
    after_loop = np.array(
        [
            index.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert np.array_equal(after_batch.costs, after_loop)
