"""Property-based tests for the index as a whole.

The single most important invariant of the reproduction: on random small
FIFO networks, every build strategy answers travel-cost queries identically to
plain time-dependent Dijkstra (exactly when functions are uncapped, within a
small bounded error when capped).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro import TDTreeIndex
from repro.baselines import earliest_arrival
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph, WeightGenerator, validate_graph


def random_connected_graph(num_vertices: int, extra_edges: int, seed: int) -> TDGraph:
    """A random connected time-dependent graph: spanning tree + extra edges."""
    rng = np.random.default_rng(seed)
    generator = WeightGenerator(num_points=3, seed=seed)
    graph = TDGraph()
    for vertex in range(1, num_vertices):
        anchor = int(rng.integers(0, vertex))
        base = float(rng.uniform(60, 600))
        graph.add_bidirectional_edge(
            vertex, anchor, generator.profile_for(base), generator.profile_for(base)
        )
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 10 * extra_edges + 10:
        attempts += 1
        u, v = (int(x) for x in rng.integers(0, num_vertices, size=2))
        if u == v or graph.has_edge(u, v):
            continue
        base = float(rng.uniform(60, 600))
        graph.add_bidirectional_edge(
            u, v, generator.profile_for(base), generator.profile_for(base)
        )
        added += 1
    return graph


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_vertices=st.integers(min_value=4, max_value=16),
    extra_edges=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
    departure=st.floats(min_value=0.0, max_value=86_400.0),
)
# Regression: the optimal 12 -> 11 journey on this graph peaks at the tree
# root, strictly above X(lca) — seeding the descending sweep with the vertex
# cut alone misses it (TD-basic answered 1581.02 instead of 1492.50).
@example(num_vertices=15, extra_edges=4, seed=374, departure=0.0)
def test_every_strategy_matches_dijkstra_on_random_graphs(
    num_vertices, extra_edges, seed, departure
):
    graph = random_connected_graph(num_vertices, extra_edges, seed)
    assert validate_graph(graph).is_valid
    rng = np.random.default_rng(seed + 1)
    queries = [
        tuple(int(x) for x in rng.choice(num_vertices, size=2, replace=False))
        for _ in range(5)
    ]

    indexes = {
        "basic": TDTreeIndex.build(graph, strategy="basic", max_points=None, validate=False),
        "full": TDTreeIndex.build(graph, strategy="full", max_points=None, validate=False),
        "approx": TDTreeIndex.build(
            graph, strategy="approx", budget_fraction=0.5, max_points=None, validate=False
        ),
    }
    for source, target in queries:
        reference = earliest_arrival(graph, source, target, departure)
        for name, index in indexes.items():
            result = index.query(source, target, departure)
            assert result.cost == pytest.approx(reference.cost, rel=1e-6, abs=1e-5), name


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_vertices=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_profiles_dominate_no_departure_time(num_vertices, seed):
    """The profile query evaluated at any time equals the scalar query there."""
    graph = random_connected_graph(num_vertices, 4, seed)
    index = TDTreeIndex.build(graph, strategy="full", max_points=None, validate=False)
    rng = np.random.default_rng(seed)
    source, target = (int(x) for x in rng.choice(num_vertices, size=2, replace=False))
    profile = index.profile(source, target)
    for departure in np.linspace(0.0, 86_400.0, 7):
        scalar = index.query(source, target, float(departure))
        assert profile.cost_at(float(departure)) == pytest.approx(
            scalar.cost, rel=1e-6, abs=1e-5
        )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_vertices=st.integers(min_value=5, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
    factor=st.floats(min_value=0.3, max_value=4.0),
)
def test_updates_keep_index_consistent_with_dijkstra(num_vertices, seed, factor):
    graph = random_connected_graph(num_vertices, 5, seed)
    index = TDTreeIndex.build(
        graph, strategy="approx", budget_fraction=0.5, max_points=None, validate=False
    )
    rng = np.random.default_rng(seed + 2)
    edges = sorted(graph.edges())
    u, v, weight = edges[int(rng.integers(0, len(edges)))]
    new_weight = PiecewiseLinearFunction(
        weight.times, np.maximum(weight.costs * factor, 0.5), validate=False
    )
    index.update_edges({(u, v): new_weight})
    for _ in range(4):
        source, target = (int(x) for x in rng.choice(num_vertices, size=2, replace=False))
        departure = float(rng.uniform(0, 86_400))
        reference = earliest_arrival(graph, source, target, departure)
        assert index.query(source, target, departure).cost == pytest.approx(
            reference.cost, rel=1e-6, abs=1e-5
        )
