"""White-box tests for the query-algorithm internals.

The public query API is covered elsewhere (against TD-Dijkstra); these tests
pin down the behaviour of the building blocks — the ascending/descending
relaxations, pruning bounds and hop expansion — so regressions show up next to
the responsible helper rather than as an opaque end-to-end mismatch.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import earliest_arrival, one_to_all
from repro.core.query import (
    _ascending_costs,
    _ascending_profiles,
    _descending_arrivals,
    expand_hop,
)


class TestAscendingCosts:
    def test_costs_cover_the_whole_root_path(self, small_tree):
        source = max(small_tree.nodes, key=lambda v: small_tree.height(v))
        costs, _ = _ascending_costs(small_tree, source, 3_600.0)
        for vertex in small_tree.root_path(source):
            assert vertex in costs
            assert math.isfinite(costs[vertex])

    def test_costs_equal_true_distances_to_ancestors(self, small_grid, small_tree):
        source = 0
        departure = 28_800.0
        costs, _ = _ascending_costs(small_tree, source, departure)
        arrivals = one_to_all(small_grid, source, departure)
        for vertex, cost in costs.items():
            assert cost == pytest.approx(arrivals[vertex] - departure, rel=1e-6)

    def test_source_cost_is_zero(self, small_tree):
        costs, _ = _ascending_costs(small_tree, 7, 0.0)
        assert costs[7] == 0.0

    def test_bound_prunes_expensive_labels(self, small_tree):
        source = 0
        unbounded, _ = _ascending_costs(small_tree, source, 0.0)
        bound = sorted(unbounded.values())[len(unbounded) // 2]
        bounded, _ = _ascending_costs(small_tree, source, 0.0, bound=bound)
        assert all(cost <= bound + 1e-9 for cost in bounded.values())
        assert len(bounded) <= len(unbounded)

    def test_known_seeds_are_respected(self, small_tree):
        source = 0
        ancestors = small_tree.ancestors(source)
        seeded_vertex = ancestors[-1]
        costs, _ = _ascending_costs(
            small_tree,
            source,
            0.0,
            known={seeded_vertex: 1.0},
            skip={seeded_vertex},
        )
        assert costs[seeded_vertex] == 1.0

    def test_predecessors_point_to_chain_vertices(self, small_tree):
        source = 0
        _, preds = _ascending_costs(small_tree, source, 0.0)
        chain = set(small_tree.root_path(source))
        for vertex, (pred, _func) in preds.items():
            assert pred in chain
            assert vertex != pred


class TestDescendingArrivals:
    def test_seeded_cut_reaches_the_target(self, small_grid, small_tree):
        source, target, departure = 0, 24, 10_000.0
        cut = small_tree.vertex_cut(source, target)
        up_costs, _ = _ascending_costs(small_tree, source, departure)
        seeds = {w: departure + up_costs[w] for w in cut if w in up_costs}
        arrivals, _ = _descending_arrivals(small_tree, target, seeds)
        reference = earliest_arrival(small_grid, source, target, departure)
        assert arrivals[target] == pytest.approx(reference.arrival, rel=1e-6)

    def test_unreachable_without_seeds(self, small_tree):
        arrivals, preds = _descending_arrivals(small_tree, 24, {})
        assert 24 not in arrivals
        assert not preds

    def test_arrival_bound_never_improves_the_result(self, small_tree):
        """The bound only prunes relaxation sources; it must never produce a
        better (smaller) arrival than the unbounded relaxation, and it cannot
        reach more vertices."""
        source, target, departure = 0, 24, 0.0
        cut = small_tree.vertex_cut(source, target)
        up_costs, _ = _ascending_costs(small_tree, source, departure)
        seeds = {w: departure + up_costs[w] for w in cut if w in up_costs}
        unbounded, _ = _descending_arrivals(small_tree, target, seeds)
        tight_bound = min(seeds.values())
        bounded, _ = _descending_arrivals(
            small_tree, target, seeds, bound_arrival=tight_bound
        )
        assert set(bounded) <= set(unbounded)
        for vertex, arrival in bounded.items():
            assert arrival >= unbounded[vertex] - 1e-9


class TestAscendingProfiles:
    def test_forward_labels_match_scalar_relaxation(self, small_tree):
        labels = _ascending_profiles(small_tree, 0, forward=True)
        costs, _ = _ascending_costs(small_tree, 0, 43_200.0)
        for vertex, func in labels.items():
            assert float(func.evaluate(43_200.0)) == pytest.approx(
                costs[vertex], rel=1e-6, abs=1e-6
            )

    def test_backward_labels_are_costs_towards_the_origin(self, small_grid, small_tree):
        target = 24
        labels = _ascending_profiles(small_tree, target, forward=False)
        for vertex in list(labels)[:5]:
            reference = earliest_arrival(small_grid, vertex, target, 21_600.0)
            assert float(labels[vertex].evaluate(21_600.0)) == pytest.approx(
                reference.cost, rel=1e-6, abs=1e-6
            )

    def test_max_points_is_respected(self, small_tree):
        labels = _ascending_profiles(small_tree, 0, forward=True, max_points=6)
        assert all(func.size <= 6 for func in labels.values())


class TestExpandHop:
    def test_expansion_terminates_and_connects(self, small_grid, small_tree):
        checked = 0
        for vertex in list(small_tree.nodes)[:8]:
            node = small_tree.nodes[vertex]
            for upper, func in node.ws.items():
                edges, arrival = expand_hop(small_tree, vertex, upper, func, 30_000.0)
                # Edges form a connected chain from vertex to upper.
                assert edges[0][0] == vertex
                assert edges[-1][1] == upper
                for (a, b), (c, _d) in zip(edges, edges[1:]):
                    assert b == c
                # Every expanded edge is an original road segment.
                for a, b in edges:
                    assert small_grid.has_edge(a, b)
                assert arrival > 30_000.0
                checked += 1
        assert checked > 0

    def test_expansion_cost_matches_function_value(self, small_grid, small_tree):
        vertex = max(small_tree.nodes, key=lambda v: small_tree.height(v))
        node = small_tree.nodes[vertex]
        upper, func = next(iter(node.ws.items()))
        departure = 45_000.0
        edges, arrival = expand_hop(small_tree, vertex, upper, func, departure)
        walked = departure
        for a, b in edges:
            walked += float(small_grid.weight(a, b).evaluate(walked))
        # The stored (exact) function and the walked original edges agree.
        assert walked == pytest.approx(arrival, rel=1e-6)
        assert arrival - departure == pytest.approx(
            float(func.evaluate(departure)), rel=1e-6
        )
