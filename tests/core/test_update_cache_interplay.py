"""Update / cache interplay: every cached layer must converge after updates.

``apply_edge_updates`` repairs labels and shortcuts incrementally; three
caching layers sit on top of them (per-node label batches + sweep plans on
the tree, per-OD-pair batches on the index, the serving result cache).  After
an update, answers served through **every** entry point must match an index
built from scratch over the updated graph — the strongest oracle available.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.api import create_engine
from repro.serving import EngineHost, QueryService


def _workload(graph, count=25, seed=77):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return (
        rng.choice(vertices, count),
        rng.choice(vertices, count),
        rng.uniform(0.0, 86_400.0, count),
    )


@pytest.mark.parametrize("strategy", ["basic", "approx", "full"])
def test_batch_query_matches_fresh_index_after_update(small_grid, strategy):
    kwargs = {"budget_fraction": 0.4} if strategy == "approx" else {}
    index = TDTreeIndex.build(
        small_grid.copy(), strategy=strategy, max_points=None, **kwargs
    )
    sources, targets, departures = _workload(index.graph)
    index.batch_query(sources, targets, departures)  # warm every cache

    edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
    changes = {
        (u, v): w.shift(180.0) for u, v, w in edges[:3]
    }
    index.update_edges(changes)

    fresh = TDTreeIndex.build(
        index.graph.copy(), strategy=strategy, max_points=None, validate=False, **kwargs
    )
    updated_costs = index.batch_query(sources, targets, departures).costs
    fresh_costs = fresh.batch_query(sources, targets, departures).costs
    np.testing.assert_allclose(updated_costs, fresh_costs, rtol=1e-6, atol=1e-6)

    # The incrementally-updated index must also stay self-consistent:
    # batched answers equal its own scalar answers bit for bit.
    looped = np.array(
        [
            index.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert np.array_equal(updated_costs, looped)


def test_query_service_matches_fresh_index_after_update(small_grid):
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=None
    )
    sources, targets, departures = _workload(index.graph, seed=78)
    queries = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))

    with QueryService(index, max_batch_size=10, max_wait_ms=5.0) as service:
        for s, t, d in queries:
            service.query(s, t, d)  # populate the result cache pre-update

        edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
        u, v, weight = edges[1]
        index.update_edge(u, v, weight.shift(240.0))
        assert service.stats().cache_invalidations == 1

        fresh = TDTreeIndex.build(
            index.graph.copy(), strategy="approx", budget_fraction=0.4,
            max_points=None, validate=False,
        )
        served = [service.query(s, t, d) for s, t, d in queries]
        expected = [fresh.query(s, t, d).cost for s, t, d in queries]
        np.testing.assert_allclose(served, expected, rtol=1e-6, atol=1e-6)


def test_repeated_updates_keep_all_layers_consistent(small_grid):
    """Alternate updates and mixed-entry-point queries several times over."""
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=None
    )
    sources, targets, departures = _workload(index.graph, count=15, seed=79)
    edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
    with QueryService(index, max_batch_size=6, max_wait_ms=5.0) as service:
        for round_no in range(3):
            u, v, weight = edges[round_no * 5]
            index.update_edge(u, v, weight.shift(60.0 * (round_no + 1)))
            batch_costs = index.batch_query(sources, targets, departures).costs
            served = [
                service.query(int(s), int(t), float(d))
                for s, t, d in zip(sources, targets, departures)
            ]
            looped = [
                index.query(int(s), int(t), float(d)).cost
                for s, t, d in zip(sources, targets, departures)
            ]
            assert np.array_equal(batch_costs, np.asarray(looped))
            assert served == looped


# ----------------------------------------------------------------------
# Swap-race regressions: invalidation hooks must never fire on a retired
# generation's cache, and in-place updates must serialize against swaps.
# ----------------------------------------------------------------------
def _build_service(small_grid):
    index = TDTreeIndex.build(small_grid.copy(), strategy="basic", max_points=None)
    return index, QueryService(index, max_batch_size=8, max_wait_ms=5.0)


def test_invalidation_racing_close_does_not_bill_retired_cache(
    small_grid, monkeypatch
):
    """An update landing while close() drains must not touch the retired cache.

    During a hot swap the successor service is already registered on the
    index; the outgoing generation detaches its hook *before* the final
    drain.  Regression: the hook used to be unregistered last, so an update
    racing the drain fired into the retired cache and skewed its stats.
    """
    index, service = _build_service(small_grid)
    service.query(0, 24, 0.0)
    before = service.stats().cache_invalidations

    original_drain = service._drain

    def racing_drain() -> int:
        # Simulates apply_edge_updates() finishing on another thread exactly
        # while close() is mid-drain.
        index.notify_invalidation()
        return original_drain()

    monkeypatch.setattr(service, "_drain", racing_drain)
    service.close()
    assert service.stats().cache_invalidations == before


def test_invalidate_cache_is_noop_on_closed_service(small_grid):
    index, service = _build_service(small_grid)
    service.query(0, 24, 0.0)
    service.close()
    before = service.stats().cache_invalidations
    service.invalidate_cache()  # a straggling notify after retirement
    assert service.stats().cache_invalidations == before


def test_abort_unregisters_hook_before_settling(small_grid):
    index, service = _build_service(small_grid)
    service.query(0, 24, 0.0)
    service.abort()
    before = service.stats().cache_invalidations
    index.notify_invalidation()
    assert service.stats().cache_invalidations == before


def test_host_apply_updates_serializes_against_swap(small_grid):
    """host.apply_updates must wait for a concurrent swap, never interleave.

    Holding the deployment's swap lock (what ``swap`` does while it builds
    and flips) must park apply_updates entirely; once released, the patch
    lands on whatever engine is live, and answers converge to the
    fresh-rebuild oracle.
    """
    with EngineHost(max_batch_size=16, max_wait_ms=1.0) as host:
        host.deploy("prod", "td-h2h", small_grid.copy())
        entry = host._deployments["prod"]
        graph = host.deployment("prod").engine.graph
        edges = sorted(graph.edges(), key=lambda e: (e[0], e[1]))
        u, v, weight = edges[0]
        changes = {(u, v): weight.shift(300.0)}

        applied = threading.Event()

        def worker() -> None:
            host.apply_updates("prod", changes)
            applied.set()

        entry.swap_lock.acquire()
        try:
            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            assert not applied.wait(0.3), "apply_updates ran inside a swap"
        finally:
            entry.swap_lock.release()
        assert applied.wait(10.0), "apply_updates never completed after swap"
        thread.join(timeout=10.0)

        fresh = create_engine("td-h2h", graph.copy())
        for s, t, d in [(0, 24, 0.0), (u, v, 1_000.0), (24, 0, 43_200.0)]:
            assert host.query("prod", s, t, d) == fresh.query(s, t, d).cost


def test_host_apply_updates_lands_on_live_generation_after_swap(small_grid):
    """Updates submitted after a swap patch the new engine, not the retired one."""
    with EngineHost(max_batch_size=16, max_wait_ms=1.0) as host:
        host.deploy("prod", "td-h2h", small_grid.copy())
        host.swap("prod", "td-h2h", small_grid.copy())
        graph = host.deployment("prod").engine.graph
        edges = sorted(graph.edges(), key=lambda e: (e[0], e[1]))
        u, v, weight = edges[2]
        report = host.apply_updates("prod", {(u, v): weight.shift(120.0)})
        assert report.num_dirty_vertices >= 1

        fresh = create_engine("td-h2h", graph.copy())
        assert host.query("prod", u, v, 0.0) == fresh.query(u, v, 0.0).cost
