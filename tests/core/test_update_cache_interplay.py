"""Update / cache interplay: every cached layer must converge after updates.

``apply_edge_updates`` repairs labels and shortcuts incrementally; three
caching layers sit on top of them (per-node label batches + sweep plans on
the tree, per-OD-pair batches on the index, the serving result cache).  After
an update, answers served through **every** entry point must match an index
built from scratch over the updated graph — the strongest oracle available.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.serving import QueryService


def _workload(graph, count=25, seed=77):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return (
        rng.choice(vertices, count),
        rng.choice(vertices, count),
        rng.uniform(0.0, 86_400.0, count),
    )


@pytest.mark.parametrize("strategy", ["basic", "approx", "full"])
def test_batch_query_matches_fresh_index_after_update(small_grid, strategy):
    kwargs = {"budget_fraction": 0.4} if strategy == "approx" else {}
    index = TDTreeIndex.build(
        small_grid.copy(), strategy=strategy, max_points=None, **kwargs
    )
    sources, targets, departures = _workload(index.graph)
    index.batch_query(sources, targets, departures)  # warm every cache

    edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
    changes = {
        (u, v): w.shift(180.0) for u, v, w in edges[:3]
    }
    index.update_edges(changes)

    fresh = TDTreeIndex.build(
        index.graph.copy(), strategy=strategy, max_points=None, validate=False, **kwargs
    )
    updated_costs = index.batch_query(sources, targets, departures).costs
    fresh_costs = fresh.batch_query(sources, targets, departures).costs
    np.testing.assert_allclose(updated_costs, fresh_costs, rtol=1e-6, atol=1e-6)

    # The incrementally-updated index must also stay self-consistent:
    # batched answers equal its own scalar answers bit for bit.
    looped = np.array(
        [
            index.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert np.array_equal(updated_costs, looped)


def test_query_service_matches_fresh_index_after_update(small_grid):
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=None
    )
    sources, targets, departures = _workload(index.graph, seed=78)
    queries = list(zip(sources.tolist(), targets.tolist(), departures.tolist()))

    with QueryService(index, max_batch_size=10, max_wait_ms=5.0) as service:
        for s, t, d in queries:
            service.query(s, t, d)  # populate the result cache pre-update

        edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
        u, v, weight = edges[1]
        index.update_edge(u, v, weight.shift(240.0))
        assert service.stats().cache_invalidations == 1

        fresh = TDTreeIndex.build(
            index.graph.copy(), strategy="approx", budget_fraction=0.4,
            max_points=None, validate=False,
        )
        served = [service.query(s, t, d) for s, t, d in queries]
        expected = [fresh.query(s, t, d).cost for s, t, d in queries]
        np.testing.assert_allclose(served, expected, rtol=1e-6, atol=1e-6)


def test_repeated_updates_keep_all_layers_consistent(small_grid):
    """Alternate updates and mixed-entry-point queries several times over."""
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=None
    )
    sources, targets, departures = _workload(index.graph, count=15, seed=79)
    edges = sorted(index.graph.edges(), key=lambda e: (e[0], e[1]))
    with QueryService(index, max_batch_size=6, max_wait_ms=5.0) as service:
        for round_no in range(3):
            u, v, weight = edges[round_no * 5]
            index.update_edge(u, v, weight.shift(60.0 * (round_no + 1)))
            batch_costs = index.batch_query(sources, targets, departures).costs
            served = [
                service.query(int(s), int(t), float(d))
                for s, t, d in zip(sources, targets, departures)
            ]
            looped = [
                index.query(int(s), int(t), float(d)).cost
                for s, t, d in zip(sources, targets, departures)
            ]
            assert np.array_equal(batch_costs, np.asarray(looped))
            assert served == looped
