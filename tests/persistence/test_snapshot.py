"""Round-trip and robustness tests for the index snapshot format.

The headline contract: ``TDTreeIndex.save`` + ``TDTreeIndex.load`` is
**bit-identical** on query costs — scalar, profile and batched — for every
build strategy, and a snapshot from an incompatible format version is
refused loudly rather than misread.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.exceptions import SnapshotError
from repro.persistence import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    load_index,
    read_manifest,
    save_index,
)

STRATEGY_FIXTURES = ["basic_index", "dp_index", "approx_index", "full_index"]


def _workload(graph, count=40, seed=99):
    rng = np.random.default_rng(seed)
    vertices = np.asarray(sorted(graph.vertices()))
    return (
        rng.choice(vertices, count),
        rng.choice(vertices, count),
        rng.uniform(0.0, 86_400.0, count),
    )


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture", STRATEGY_FIXTURES)
def test_roundtrip_is_bit_identical_on_costs(fixture, request, tmp_path):
    index = request.getfixturevalue(fixture)
    sources, targets, departures = _workload(index.graph)

    index.save(tmp_path / "snap")
    loaded = TDTreeIndex.load(tmp_path / "snap")

    batch_before = index.batch_query(sources, targets, departures).costs
    batch_after = loaded.batch_query(sources, targets, departures).costs
    assert np.array_equal(batch_before, batch_after)

    for s, t, d in zip(sources[:8], targets[:8], departures[:8]):
        assert loaded.query(int(s), int(t), float(d)).cost == index.query(
            int(s), int(t), float(d)
        ).cost

    profile_before = index.profile(int(sources[0]), int(targets[0]))
    profile_after = loaded.profile(int(sources[0]), int(targets[0]))
    assert np.array_equal(profile_before.function.times, profile_after.function.times)
    assert np.array_equal(profile_before.function.costs, profile_after.function.costs)


@pytest.mark.parametrize("fixture", STRATEGY_FIXTURES)
def test_roundtrip_preserves_statistics(fixture, request, tmp_path):
    index = request.getfixturevalue(fixture)
    loaded = TDTreeIndex.load(index.save(tmp_path / "snap"))
    before = index.statistics()
    after = loaded.statistics()
    assert after.strategy == before.strategy
    assert after.num_vertices == before.num_vertices
    assert after.num_edges == before.num_edges
    assert after.treewidth == before.treewidth
    assert after.treeheight == before.treeheight
    assert after.num_candidate_pairs == before.num_candidate_pairs
    assert after.num_selected_pairs == before.num_selected_pairs
    assert after.selected_weight == before.selected_weight
    assert after.budget == before.budget
    assert loaded.selection.method == index.selection.method
    assert loaded.max_points == index.max_points
    assert loaded.tolerance == index.tolerance
    assert (
        loaded.memory_breakdown().total_bytes == index.memory_breakdown().total_bytes
    )


def test_roundtrip_preserves_via_provenance_and_paths(approx_index, tmp_path):
    loaded = TDTreeIndex.load(approx_index.save(tmp_path / "snap"))
    result_before = approx_index.query(0, 24, 3_600.0, need_path=True)
    result_after = loaded.query(0, 24, 3_600.0, need_path=True)
    assert result_after.cost == result_before.cost
    assert result_after.path() == result_before.path()


def test_loaded_index_supports_updates(small_grid, tmp_path):
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=16
    )
    loaded = TDTreeIndex.load(index.save(tmp_path / "snap"))
    u, v, weight = next(iter(loaded.graph.edges()))
    report = loaded.update_edge(u, v, weight.shift(120.0))
    assert report.num_changed_edges == 1
    sources, targets, departures = _workload(loaded.graph, count=15, seed=4)
    batch = loaded.batch_query(sources, targets, departures).costs
    looped = np.array(
        [
            loaded.query(int(s), int(t), float(d)).cost
            for s, t, d in zip(sources, targets, departures)
        ]
    )
    assert np.array_equal(batch, looped)


def test_save_load_after_update_keeps_costs(small_grid, tmp_path):
    index = TDTreeIndex.build(
        small_grid.copy(), strategy="approx", budget_fraction=0.4, max_points=16
    )
    u, v, weight = next(iter(index.graph.edges()))
    index.update_edge(u, v, weight.shift(300.0))
    loaded = TDTreeIndex.load(index.save(tmp_path / "snap"))
    sources, targets, departures = _workload(index.graph, count=20, seed=8)
    assert np.array_equal(
        index.batch_query(sources, targets, departures).costs,
        loaded.batch_query(sources, targets, departures).costs,
    )


def test_coordinates_survive_roundtrip(approx_index, tmp_path):
    loaded = TDTreeIndex.load(approx_index.save(tmp_path / "snap"))
    assert loaded.graph.coordinates() == approx_index.graph.coordinates()


# ----------------------------------------------------------------------
# Manifest and robustness
# ----------------------------------------------------------------------
def test_manifest_contents(approx_index, tmp_path):
    directory = approx_index.save(tmp_path / "snap")
    manifest = read_manifest(directory)
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["strategy"] == "approx"
    assert manifest["counts"]["tree_nodes"] == approx_index.tree.num_nodes
    assert manifest["counts"]["shortcut_pairs"] == len(approx_index.shortcuts)
    assert manifest["selection"]["method"] == approx_index.selection.method


def test_manifest_records_engine_spec_and_registry_version(approx_index, tmp_path):
    from repro.api import registry_version

    directory = approx_index.save(
        tmp_path / "snap", engine_spec="td-appro?budget_fraction=0.4"
    )
    manifest = read_manifest(directory)
    assert manifest["engine_spec"] == "td-appro?budget_fraction=0.4"
    assert manifest["registry_version"] == registry_version()


def test_manifest_engine_spec_defaults_to_none(approx_index, tmp_path):
    manifest = read_manifest(approx_index.save(tmp_path / "snap"))
    assert manifest["engine_spec"] is None
    assert isinstance(manifest["registry_version"], int)


def test_manifest_without_spec_fields_still_loads(approx_index, tmp_path):
    """Manifests written before engine_spec/registry_version existed load fine."""
    directory = save_index(approx_index, tmp_path / "snap", engine_spec="td-appro")
    manifest_path = directory / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    del manifest["engine_spec"]
    del manifest["registry_version"]
    manifest_path.write_text(json.dumps(manifest))

    loaded = load_index(directory)
    s, t, d = 0, approx_index.graph.num_vertices - 1, 3600.0
    assert loaded.query(s, t, d).cost == approx_index.query(s, t, d).cost


def test_load_missing_snapshot_raises(tmp_path):
    with pytest.raises(SnapshotError):
        load_index(tmp_path / "nope")


def test_load_rejects_future_format_version(approx_index, tmp_path):
    directory = approx_index.save(tmp_path / "snap")
    manifest_path = directory + "/" + MANIFEST_NAME
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["format_version"] = FORMAT_VERSION + 1
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    with pytest.raises(SnapshotError, match="format version"):
        load_index(directory)


def test_load_rejects_foreign_manifest(tmp_path):
    snap = tmp_path / "snap"
    snap.mkdir()
    (snap / MANIFEST_NAME).write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(SnapshotError):
        load_index(snap)


def test_load_rejects_missing_arrays(approx_index, tmp_path):
    directory = approx_index.save(tmp_path / "snap")
    (tmp_path / "snap" / ARRAYS_NAME).unlink()
    with pytest.raises(SnapshotError, match="missing"):
        load_index(directory)


def test_load_rejects_count_mismatch(approx_index, tmp_path):
    directory = approx_index.save(tmp_path / "snap")
    manifest_path = tmp_path / "snap" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["counts"]["tree_nodes"] += 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="inconsistent"):
        load_index(directory)


def test_save_rejects_non_index(tmp_path):
    with pytest.raises(SnapshotError):
        save_index(object(), tmp_path / "snap")


def test_load_rejects_corrupt_plf_buffers(approx_index, tmp_path):
    """A truncated/missing ragged buffer surfaces as SnapshotError, not a leak."""
    directory = approx_index.save(tmp_path / "snap")
    arrays_path = tmp_path / "snap" / ARRAYS_NAME
    data = dict(np.load(arrays_path))
    del data["graph_weight_times"]
    np.savez(arrays_path, **data)
    with pytest.raises(SnapshotError, match="corrupt"):
        load_index(directory)


def test_load_rejects_mixed_generations(approx_index, basic_index, tmp_path):
    """Arrays and manifest from different save() calls must not be combined."""
    directory = approx_index.save(tmp_path / "snap")
    other = basic_index.save(tmp_path / "other")
    (tmp_path / "snap" / ARRAYS_NAME).write_bytes(
        (tmp_path / "other" / ARRAYS_NAME).read_bytes()
    )
    with pytest.raises(SnapshotError, match="torn"):
        load_index(directory)
    load_index(other)  # the untouched snapshot still loads


# ----------------------------------------------------------------------
# Memory-mapped loading (mmap_mode="r"/"c")
# ----------------------------------------------------------------------
class TestMmapLoading:
    """``load_index(..., mmap_mode=...)``: shared pages, identical answers.

    The replica serving layer (:mod:`repro.serving.replica`) depends on two
    properties proven here: the mapped arrays really are memory-mapped (their
    ``.base`` is a :class:`numpy.memmap`, so N processes mapping one snapshot
    share one physical copy through the page cache), and a mapped load is
    **bit-identical** to an eager one on every buffer and every query.
    """

    def test_mapped_arrays_are_memmap_backed_and_bit_identical(
        self, approx_index, tmp_path
    ):
        from repro.persistence.snapshot import _mmap_npz

        directory = approx_index.save(tmp_path / "snap")
        arrays_path = tmp_path / "snap" / ARRAYS_NAME
        mapped = _mmap_npz(arrays_path, "r")
        with np.load(arrays_path) as archive:
            eager = {name: archive[name] for name in archive.files}

        assert set(mapped) == set(eager)
        mapped_count = 0
        for name, arr in mapped.items():
            assert np.array_equal(arr, eager[name]), name
            if arr.dtype.hasobject or arr.size == 0:
                continue  # documented eager fallback for unmappable members
            assert isinstance(arr.base, np.memmap), name
            mapped_count += 1
        # The dominant payload (the ragged PLF buffers) must actually map.
        assert mapped_count > 0
        for key in ("tree_ws_plf_times", "graph_weight_times"):
            matches = [n for n in mapped if n.endswith(key)]
            assert matches, key
            assert all(
                mapped[n].size == 0 or isinstance(mapped[n].base, np.memmap)
                for n in matches
            )

    @pytest.mark.parametrize("mode", ["r", "c"])
    def test_mmap_load_is_bit_identical_on_costs(self, approx_index, tmp_path, mode):
        directory = approx_index.save(tmp_path / "snap")
        eager = load_index(directory)
        mapped = load_index(directory, mmap_mode=mode)
        sources, targets, departures = _workload(approx_index.graph)
        assert np.array_equal(
            mapped.batch_query(sources, targets, departures).costs,
            eager.batch_query(sources, targets, departures).costs,
        )
        for s, t, d in zip(sources[:8], targets[:8], departures[:8]):
            assert (
                mapped.query(int(s), int(t), float(d)).cost
                == eager.query(int(s), int(t), float(d)).cost
            )

    def test_index_load_passes_mmap_mode_through(self, basic_index, tmp_path):
        directory = basic_index.save(tmp_path / "snap")
        mapped = TDTreeIndex.load(directory, mmap_mode="r")
        sources, targets, departures = _workload(basic_index.graph)
        assert np.array_equal(
            mapped.batch_query(sources, targets, departures).costs,
            basic_index.batch_query(sources, targets, departures).costs,
        )

    def test_invalid_mmap_mode_is_refused(self, basic_index, tmp_path):
        directory = basic_index.save(tmp_path / "snap")
        # Writable maps would let one replica corrupt the shared snapshot.
        for mode in ("r+", "w+", "x", ""):
            with pytest.raises(SnapshotError, match="mmap_mode"):
                load_index(directory, mmap_mode=mode)

    def test_compressed_member_falls_back_to_eager_read(self, basic_index, tmp_path):
        """Foreign (compressed) archives still load correctly, just unmapped."""
        import zipfile

        from repro.persistence.snapshot import _mmap_npz

        directory = basic_index.save(tmp_path / "snap")
        arrays_path = tmp_path / "snap" / ARRAYS_NAME
        recompressed = tmp_path / "compressed.npz"
        with np.load(arrays_path) as archive:
            data = {name: archive[name] for name in archive.files}
        np.savez_compressed(recompressed, **data)
        with zipfile.ZipFile(recompressed) as archive:
            assert any(
                i.compress_type != zipfile.ZIP_STORED for i in archive.infolist()
            )
        mapped = _mmap_npz(recompressed, "r")
        for name, arr in mapped.items():
            assert np.array_equal(arr, data[name]), name
