"""Tests for the TD-H2H baseline (full-shortcut tree decomposition)."""

from __future__ import annotations

import pytest

from repro.baselines import TDH2H, build_td_h2h, earliest_arrival
from repro.core import TDTreeIndex


@pytest.fixture(scope="module")
def h2h(request):
    small_grid = request.getfixturevalue("small_grid")
    return TDH2H.build(small_grid, max_points=None)


class TestConstruction:
    def test_is_a_full_strategy_index(self, h2h):
        assert isinstance(h2h, TDTreeIndex)
        assert h2h.strategy == "full"
        stats = h2h.statistics()
        assert stats.num_selected_pairs == stats.num_candidate_pairs

    def test_helper_function(self, small_grid):
        index = build_td_h2h(small_grid, max_points=8)
        assert isinstance(index, TDH2H)

    def test_largest_memory_footprint(self, small_grid, h2h):
        basic = TDTreeIndex.build(small_grid, strategy="basic", max_points=None)
        approx = TDTreeIndex.build(
            small_grid, strategy="approx", budget_fraction=0.3, max_points=None
        )
        assert (
            h2h.memory_breakdown().total_bytes
            > approx.memory_breakdown().total_bytes
            > basic.memory_breakdown().total_bytes
        )


class TestQueries:
    def test_exact_answers(self, small_grid, h2h, random_od_pairs):
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            assert h2h.query(source, target, departure).cost == pytest.approx(
                reference.cost, rel=1e-6
            )

    def test_all_queries_take_the_fast_path(self, h2h, random_od_pairs):
        for source, target, departure in random_od_pairs[:10]:
            assert h2h.query(source, target, departure).strategy == "full_shortcuts"
