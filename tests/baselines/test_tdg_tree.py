"""Tests for the TD-G-tree baseline."""

from __future__ import annotations

import pytest

from repro.baselines import TDGTree, earliest_arrival, profile_search
from repro.exceptions import GraphError, IndexBuildError, VertexNotFoundError
from repro.graph import TDGraph


@pytest.fixture(scope="module")
def gtree(request):
    small_grid = request.getfixturevalue("small_grid")
    return TDGTree.build(small_grid, leaf_size=8, max_points=None)


class TestPartitioning:
    def test_every_vertex_assigned_to_exactly_one_leaf(self, small_grid, gtree):
        assert set(gtree.leaf_of) == set(small_grid.vertices())
        for vertex, leaf_id in gtree.leaf_of.items():
            assert vertex in gtree.nodes[leaf_id].vertices
            assert gtree.nodes[leaf_id].is_leaf

    def test_leaf_size_respected(self, gtree):
        for node in gtree.nodes.values():
            if node.is_leaf:
                assert len(node.vertices) <= 8

    def test_children_partition_their_parent(self, gtree):
        for node in gtree.nodes.values():
            if node.is_leaf:
                continue
            union = set()
            for child_id in node.children:
                child = gtree.nodes[child_id]
                assert child.vertices <= node.vertices
                assert not (union & child.vertices)
                union |= child.vertices
            assert union == set(node.vertices)

    def test_root_contains_everything(self, small_grid, gtree):
        assert gtree.nodes[gtree.root_id].vertices == frozenset(small_grid.vertices())

    def test_borders_have_outside_edges(self, small_grid, gtree):
        for node in gtree.nodes.values():
            if node.node_id == gtree.root_id:
                continue
            for border in node.borders:
                assert any(
                    neighbor not in node.vertices
                    for neighbor in small_grid.neighbors(border)
                )

    def test_rejects_empty_graph(self):
        with pytest.raises(GraphError):
            TDGTree.build(TDGraph())

    def test_rejects_degenerate_leaf_size(self, small_grid):
        with pytest.raises(IndexBuildError):
            TDGTree.build(small_grid, leaf_size=1)


class TestQueries:
    def test_costs_never_undershoot_dijkstra(self, small_grid, gtree, random_od_pairs):
        """The assembly is restricted to within-partition matrices, so its
        answers are valid path costs: never below the true optimum."""
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = gtree.query(source, target, departure)
            assert result.cost >= reference.cost - 1e-6

    def test_costs_are_close_to_optimal_on_average(
        self, small_grid, gtree, random_od_pairs
    ):
        """The documented partition-assembly detour stays small on grids."""
        gaps = []
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = gtree.query(source, target, departure)
            gaps.append((result.cost - reference.cost) / max(reference.cost, 1e-9))
        assert sum(gaps) / len(gaps) < 0.02
        assert max(gaps) < 0.25

    def test_same_leaf_query_is_exact(self, small_grid, gtree):
        # Two vertices in the same leaf: answered by plain Dijkstra.
        leaf = next(node for node in gtree.nodes.values() if node.is_leaf)
        members = sorted(leaf.vertices)
        source, target = members[0], members[-1]
        reference = earliest_arrival(small_grid, source, target, 10_000.0)
        result = gtree.query(source, target, 10_000.0)
        assert result.cost == pytest.approx(reference.cost, rel=1e-9)
        assert result.strategy == "tdg-tree-local"

    def test_source_equals_target(self, gtree):
        assert gtree.query(5, 5, 0.0).cost == 0.0

    def test_unknown_vertex_raises(self, gtree):
        with pytest.raises(VertexNotFoundError):
            gtree.query(0, 999, 0.0)

    def test_profile_envelopes_scalar_answers(self, gtree):
        source, target = 0, 24
        profile = gtree.profile(source, target)
        for departure in (0.0, 21_600.0, 43_200.0, 64_800.0):
            scalar = gtree.query(source, target, departure)
            assert profile.evaluate(departure) <= scalar.cost + 1e-6

    def test_profile_never_undershoots_true_profile(self, small_grid, gtree):
        reference = profile_search(small_grid, 0)[24]
        result = gtree.profile(0, 24)
        for departure in (0.0, 21_600.0, 43_200.0, 64_800.0, 86_400.0):
            assert result.evaluate(departure) >= reference.evaluate(departure) - 1e-6


class TestIntrospection:
    def test_memory_breakdown_counts_matrices(self, gtree):
        breakdown = gtree.memory_breakdown()
        assert breakdown.label_points > 0
        assert breakdown.total_bytes > 0

    def test_statistics(self, gtree):
        stats = gtree.statistics()
        assert stats["num_partitions"] >= stats["num_leaves"] >= 2
        assert stats["build_seconds"] > 0

    def test_memory_grows_with_smaller_leaves(self, small_grid):
        coarse = TDGTree.build(small_grid, leaf_size=16, max_points=8)
        fine = TDGTree.build(small_grid, leaf_size=4, max_points=8)
        assert fine.statistics()["num_partitions"] > coarse.statistics()["num_partitions"]
