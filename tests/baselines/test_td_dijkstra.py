"""Tests for the time-dependent Dijkstra reference algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TDDijkstra, earliest_arrival, one_to_all, profile_search
from repro.exceptions import DisconnectedQueryError, VertexNotFoundError
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph


class TestEarliestArrival:
    def test_triangle_takes_detour_when_direct_is_congested(self, triangle_graph):
        # At noon the direct edge costs 400 while the detour costs 250.
        result = earliest_arrival(triangle_graph, 0, 1, 43_200.0)
        assert result.cost == pytest.approx(250.0, abs=1.0)
        assert result.path == [0, 2, 1]

    def test_triangle_takes_direct_edge_at_night(self, triangle_graph):
        result = earliest_arrival(triangle_graph, 0, 1, 0.0)
        assert result.cost == pytest.approx(100.0)
        assert result.path == [0, 1]

    def test_line_graph_costs_accumulate(self, line_graph):
        result = earliest_arrival(line_graph, 0, 4, 0.0)
        assert result.cost == pytest.approx(10 + 20 + 30 + 40)
        assert result.path == [0, 1, 2, 3, 4]

    def test_waiting_is_never_beneficial_on_fifo_networks(self, small_grid):
        early = earliest_arrival(small_grid, 0, 24, 7 * 3600.0)
        later = earliest_arrival(small_grid, 0, 24, 7 * 3600.0 + 600.0)
        assert later.arrival + 1e-6 >= early.arrival

    def test_source_equals_target(self, line_graph):
        result = earliest_arrival(line_graph, 2, 2, 100.0)
        assert result.cost == 0.0
        assert result.path == [2]

    def test_unknown_vertices_raise(self, line_graph):
        with pytest.raises(VertexNotFoundError):
            earliest_arrival(line_graph, 0, 99, 0.0)
        with pytest.raises(VertexNotFoundError):
            earliest_arrival(line_graph, 99, 0, 0.0)

    def test_disconnected_target_raises(self):
        graph = TDGraph()
        graph.add_edge(0, 1, PiecewiseLinearFunction.constant(1.0))
        graph.add_vertex(5)
        with pytest.raises(DisconnectedQueryError):
            earliest_arrival(graph, 0, 5, 0.0)

    def test_path_is_time_consistent(self, small_grid, random_od_pairs):
        for source, target, departure in random_od_pairs[:10]:
            result = earliest_arrival(small_grid, source, target, departure)
            clock = departure
            for a, b in zip(result.path, result.path[1:]):
                clock += float(small_grid.weight(a, b).evaluate(clock))
            assert clock == pytest.approx(result.arrival, rel=1e-9)

    def test_settled_counter_positive(self, small_grid):
        result = earliest_arrival(small_grid, 0, 24, 0.0)
        assert result.settled >= 2


class TestOneToAll:
    def test_covers_every_vertex_of_connected_graph(self, small_grid):
        arrivals = one_to_all(small_grid, 0, 0.0)
        assert set(arrivals) == set(small_grid.vertices())
        assert arrivals[0] == 0.0

    def test_matches_point_queries(self, small_grid):
        arrivals = one_to_all(small_grid, 0, 3_600.0)
        for target in (5, 12, 24):
            single = earliest_arrival(small_grid, 0, target, 3_600.0)
            assert arrivals[target] == pytest.approx(single.arrival, rel=1e-9)


class TestProfileSearch:
    def test_profile_envelopes_scalar_queries(self, triangle_graph):
        profile = profile_search(triangle_graph, 0)[1]
        for departure in np.linspace(0, 86_400, 25):
            scalar = earliest_arrival(triangle_graph, 0, 1, float(departure))
            assert profile.evaluate(float(departure)) == pytest.approx(
                scalar.cost, rel=1e-6, abs=1e-6
            )

    def test_profile_of_source_is_zero(self, triangle_graph):
        assert profile_search(triangle_graph, 0)[0].evaluate(12.0) == 0.0

    def test_max_points_caps_labels(self, small_grid):
        labels = profile_search(small_grid, 0, max_points=6)
        assert all(func.size <= 6 for func in labels.values())

    def test_unknown_source_raises(self, line_graph):
        with pytest.raises(VertexNotFoundError):
            profile_search(line_graph, 99)


class TestFacade:
    def test_build_and_query(self, small_grid):
        engine = TDDijkstra.build(small_grid)
        result = engine.query(0, 24, 0.0)
        assert result.cost > 0

    def test_profile_method(self, triangle_graph):
        engine = TDDijkstra.build(triangle_graph)
        func = engine.profile(0, 1)
        assert func.evaluate(0.0) == pytest.approx(100.0)

    def test_profile_to_unreachable_vertex_raises(self):
        graph = TDGraph()
        graph.add_edge(0, 1, PiecewiseLinearFunction.constant(1.0))
        graph.add_vertex(7)
        engine = TDDijkstra.build(graph)
        with pytest.raises(DisconnectedQueryError):
            engine.profile(0, 7)

    def test_memory_breakdown_is_empty(self, small_grid):
        assert TDDijkstra.build(small_grid).memory_breakdown().total_bytes == 0
