"""Tests for the time-dependent A* baseline."""

from __future__ import annotations

import pytest

from repro.baselines import (
    LandmarkHeuristic,
    MinCostHeuristic,
    TDAStar,
    astar_earliest_arrival,
    earliest_arrival,
)
from repro.exceptions import VertexNotFoundError


class TestHeuristics:
    def test_min_cost_heuristic_is_admissible(self, small_grid, random_od_pairs):
        heuristic = MinCostHeuristic(small_grid)
        for source, target, departure in random_od_pairs[:10]:
            reference = earliest_arrival(small_grid, source, target, departure)
            assert heuristic.estimate(source, target) <= reference.cost + 1e-6

    def test_min_cost_heuristic_zero_at_target(self, small_grid):
        heuristic = MinCostHeuristic(small_grid)
        assert heuristic.estimate(7, 7) == 0.0

    def test_min_cost_heuristic_caches_per_target(self, small_grid):
        heuristic = MinCostHeuristic(small_grid)
        heuristic.prepare(5)
        assert 5 in heuristic._cache
        heuristic.estimate(0, 5)
        assert len(heuristic._cache) == 1

    def test_landmark_heuristic_is_admissible(self, small_grid, random_od_pairs):
        heuristic = LandmarkHeuristic(small_grid, num_landmarks=4, seed=1)
        for source, target, departure in random_od_pairs[:10]:
            reference = earliest_arrival(small_grid, source, target, departure)
            assert heuristic.estimate(source, target) <= reference.cost + 1e-6

    def test_landmark_count(self, small_grid):
        heuristic = LandmarkHeuristic(small_grid, num_landmarks=4, seed=0)
        assert len(heuristic.landmarks) == 4

    def test_landmark_estimates_are_nonnegative(self, small_grid):
        heuristic = LandmarkHeuristic(small_grid, num_landmarks=3, seed=2)
        assert heuristic.estimate(0, 24) >= 0.0


class TestAStarSearch:
    def test_matches_dijkstra(self, small_grid, random_od_pairs):
        heuristic = MinCostHeuristic(small_grid)
        for source, target, departure in random_od_pairs:
            reference = earliest_arrival(small_grid, source, target, departure)
            result = astar_earliest_arrival(
                small_grid, source, target, departure, heuristic
            )
            assert result.cost == pytest.approx(reference.cost, rel=1e-9)

    def test_goal_direction_settles_no_more_vertices(self, small_grid, random_od_pairs):
        heuristic = MinCostHeuristic(small_grid)
        total_astar = total_dijkstra = 0
        for source, target, departure in random_od_pairs[:10]:
            total_dijkstra += earliest_arrival(small_grid, source, target, departure).settled
            total_astar += astar_earliest_arrival(
                small_grid, source, target, departure, heuristic
            ).settled
        assert total_astar <= total_dijkstra

    def test_path_is_valid(self, small_grid):
        heuristic = MinCostHeuristic(small_grid)
        result = astar_earliest_arrival(small_grid, 0, 24, 30_000.0, heuristic)
        for a, b in zip(result.path, result.path[1:]):
            assert small_grid.has_edge(a, b)

    def test_unknown_vertices_raise(self, small_grid):
        heuristic = MinCostHeuristic(small_grid)
        with pytest.raises(VertexNotFoundError):
            astar_earliest_arrival(small_grid, 0, 999, 0.0, heuristic)
        with pytest.raises(VertexNotFoundError):
            astar_earliest_arrival(small_grid, 999, 0, 0.0, heuristic)


class TestFacade:
    def test_default_build_uses_min_cost_heuristic(self, small_grid):
        engine = TDAStar.build(small_grid)
        assert isinstance(engine.heuristic, MinCostHeuristic)
        assert engine.query(0, 24, 0.0).cost > 0

    def test_landmark_build(self, small_grid, random_od_pairs):
        engine = TDAStar.build(small_grid, heuristic="landmarks", num_landmarks=4, seed=3)
        assert isinstance(engine.heuristic, LandmarkHeuristic)
        source, target, departure = random_od_pairs[0]
        reference = earliest_arrival(small_grid, source, target, departure)
        assert engine.query(source, target, departure).cost == pytest.approx(
            reference.cost, rel=1e-9
        )

    def test_memory_breakdown_counts_cached_tables(self, small_grid):
        engine = TDAStar.build(small_grid)
        before = engine.memory_breakdown().total_bytes
        engine.query(0, 24, 0.0)
        after = engine.memory_breakdown().total_bytes
        assert after >= before
