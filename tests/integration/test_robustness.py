"""Robustness and adversarial-input tests.

Directed (asymmetric) weights, extreme cost ranges, near-degenerate graphs and
invalid inputs: the index must either answer exactly like TD-Dijkstra or fail
loudly with the documented exception — never return a silently wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.baselines import TDGTree, earliest_arrival, profile_search
from repro.exceptions import GraphError, ReproError
from repro.functions import PiecewiseLinearFunction
from repro.graph import TDGraph, WeightGenerator, grid_network, validate_graph


def asymmetric_network(seed: int = 0, rows: int = 4, cols: int = 4) -> TDGraph:
    """A grid whose two directions carry *different* congestion profiles.

    This exercises the Ws/Wd split of the tree decomposition: a bug that mixes
    up the two directions passes every test on symmetric networks but fails
    here.
    """
    rng = np.random.default_rng(seed)
    generator = WeightGenerator(4, seed=seed + 1)
    graph = TDGraph()

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(vid(r, c), (float(c), float(r)))
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    base_fwd = float(rng.uniform(60, 300))
                    base_bwd = float(rng.uniform(60, 300))
                    graph.add_edge(vid(r, c), vid(rr, cc), generator.profile_for(base_fwd))
                    graph.add_edge(vid(rr, cc), vid(r, c), generator.profile_for(base_bwd))
    return graph


class TestAsymmetricWeights:
    @pytest.mark.parametrize("strategy", ["basic", "full", "approx"])
    def test_index_matches_dijkstra_in_both_directions(self, strategy):
        graph = asymmetric_network(seed=3)
        assert validate_graph(graph).is_valid
        kwargs = {"budget_fraction": 0.5} if strategy == "approx" else {}
        index = TDTreeIndex.build(graph, strategy=strategy, max_points=None, **kwargs)
        rng = np.random.default_rng(7)
        for _ in range(20):
            source, target = (int(v) for v in rng.choice(graph.num_vertices, 2, replace=False))
            departure = float(rng.uniform(0, 86_400))
            forward_ref = earliest_arrival(graph, source, target, departure)
            backward_ref = earliest_arrival(graph, target, source, departure)
            assert index.query(source, target, departure).cost == pytest.approx(
                forward_ref.cost, rel=1e-6
            )
            assert index.query(target, source, departure).cost == pytest.approx(
                backward_ref.cost, rel=1e-6
            )

    def test_forward_and_backward_costs_actually_differ(self):
        graph = asymmetric_network(seed=3)
        index = TDTreeIndex.build(graph, strategy="full", max_points=None)
        diffs = [
            abs(index.query(0, 15, 30_000.0).cost - index.query(15, 0, 30_000.0).cost)
        ]
        assert max(diffs) > 1.0  # the asymmetry is visible end-to-end

    def test_profile_queries_on_asymmetric_network(self):
        graph = asymmetric_network(seed=5)
        index = TDTreeIndex.build(graph, strategy="full", max_points=None)
        exact = profile_search(graph, 0)[15]
        assert exact.max_difference(index.profile(0, 15).function, samples=300) < 1e-6


class TestExtremeCosts:
    def test_huge_and_tiny_costs_coexist(self):
        graph = grid_network(4, 4, seed=2)
        # Make one road essentially free and another astronomically expensive.
        cheap = PiecewiseLinearFunction.constant(1e-3)
        pricey = PiecewiseLinearFunction.constant(1e7)
        edges = sorted((u, v) for u, v, _ in graph.edges())
        graph.set_weight(*edges[0], cheap)
        graph.set_weight(*edges[-1], pricey)
        index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.4, max_points=None)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, d = (int(v) for v in rng.choice(graph.num_vertices, 2, replace=False))
            t = float(rng.uniform(0, 86_400))
            assert index.query(s, d, t).cost == pytest.approx(
                earliest_arrival(graph, s, d, t).cost, rel=1e-6
            )

    def test_zero_cost_edges_are_handled(self):
        graph = TDGraph()
        zero = PiecewiseLinearFunction.constant(0.0)
        ten = PiecewiseLinearFunction.constant(10.0)
        graph.add_bidirectional_edge(0, 1, zero)
        graph.add_bidirectional_edge(1, 2, ten)
        graph.add_bidirectional_edge(0, 2, PiecewiseLinearFunction.constant(25.0))
        index = TDTreeIndex.build(graph, strategy="full", max_points=None)
        assert index.query(0, 2, 0.0).cost == pytest.approx(10.0)


class TestInvalidInputsFailLoudly:
    def test_non_fifo_graph_rejected_at_build_time(self):
        graph = grid_network(3, 3, seed=1)
        bad = PiecewiseLinearFunction([0.0, 10.0], [500.0, 10.0], validate=False)
        u, v, _ = next(iter(graph.edges()))
        graph.set_weight(u, v, bad)
        with pytest.raises(GraphError, match="FIFO"):
            TDTreeIndex.build(graph, strategy="basic")

    def test_empty_graph_rejected(self):
        with pytest.raises(ReproError):
            TDTreeIndex.build(TDGraph(), strategy="basic")

    def test_gtree_queries_on_asymmetric_network_never_undershoot(self):
        graph = asymmetric_network(seed=11)
        gtree = TDGTree.build(graph, leaf_size=6, max_points=None)
        rng = np.random.default_rng(1)
        for _ in range(10):
            s, d = (int(v) for v in rng.choice(graph.num_vertices, 2, replace=False))
            t = float(rng.uniform(0, 86_400))
            reference = earliest_arrival(graph, s, d, t)
            assert gtree.query(s, d, t).cost >= reference.cost - 1e-6


class TestTinyGraphs:
    def test_two_vertex_graph(self):
        graph = TDGraph()
        graph.add_bidirectional_edge(
            0, 1, PiecewiseLinearFunction.from_points([(0, 5), (86_400, 15)])
        )
        index = TDTreeIndex.build(graph, strategy="full", max_points=None)
        assert index.query(0, 1, 0.0).cost == pytest.approx(5.0)
        assert index.query(0, 1, 86_400.0).cost == pytest.approx(15.0)

    def test_star_graph(self):
        graph = TDGraph()
        for leaf in range(1, 6):
            graph.add_bidirectional_edge(
                0, leaf, PiecewiseLinearFunction.constant(float(leaf))
            )
        index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.5, max_points=None)
        assert index.query(1, 5, 0.0).cost == pytest.approx(6.0)
        assert index.tree.treewidth == 1
