"""Fidelity tests against the paper's running example (Figs. 1-7).

The 15-vertex network of Fig. 1a with the edge profiles of Fig. 1b is small
enough to verify the narrative claims of the paper directly:

* Example 2.2/2.3 and Fig. 2: the shortest travel-cost function from v1 to v9
  is the minimum of the two compounded path functions, the best path switches
  from (e_{1,4}, e_{4,9}) to (e_{1,2}, e_{2,9}) as the departure time grows;
* Example 3.1/3.2: the tree decomposition has one node per vertex and small
  treewidth/treeheight;
* the index answers on this example match plain time-dependent Dijkstra for
  every build strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.baselines import earliest_arrival, profile_search
from repro.functions import PiecewiseLinearFunction, compound, minimum
from repro.graph import paper_example_graph


@pytest.fixture(scope="module")
def example():
    return paper_example_graph()


class TestFigure2TravelCostFunction:
    def test_f_1_9_is_min_of_the_two_path_compounds(self, example):
        w_1_4, w_4_9 = example.weight(1, 4), example.weight(4, 9)
        w_1_2, w_2_9 = example.weight(1, 2), example.weight(2, 9)
        via_4 = compound(w_1_4, w_4_9)
        via_2 = compound(w_1_2, w_2_9)
        expected = minimum(via_4, via_2)

        exact = profile_search(example, 1)[9]
        grid = np.linspace(0.0, 60.0, 200)
        # No other route between v1 and v9 can beat these two simple paths on
        # this network, so the exact profile matches the hand-built envelope.
        assert np.allclose(exact.evaluate(grid), expected.evaluate(grid), atol=1e-6)

    def test_best_path_switches_with_departure_time(self, example):
        """Example 2.3: early departures go via v4, later ones via v2."""
        early = earliest_arrival(example, 1, 9, 0.0)
        late = earliest_arrival(example, 1, 9, 55.0)
        assert early.path == [1, 4, 9]
        assert late.path == [1, 2, 9]

    def test_departure_zero_cost_matches_figure(self, example):
        """At t=0 the (1,4,9) path costs 5 + w_{4,9}(5) ≈ 5.83 minutes."""
        result = earliest_arrival(example, 1, 9, 0.0)
        w_4_9 = example.weight(4, 9)
        assert result.cost == pytest.approx(5.0 + float(w_4_9.evaluate(5.0)), rel=1e-9)


class TestTreeDecompositionOfTheExample:
    def test_every_vertex_gets_a_node(self, example):
        index = TDTreeIndex.build(example, strategy="basic", max_points=None)
        assert index.tree.num_nodes == 15

    def test_treewidth_is_small(self, example):
        index = TDTreeIndex.build(example, strategy="basic", max_points=None)
        # Fig. 3 reports treewidth 3 / treeheight 7; ties in the min-degree
        # heuristic may shift this slightly but it must stay small.
        assert index.tree.treewidth <= 5
        assert index.tree.treeheight <= 10


class TestQueriesOnTheExample:
    @pytest.mark.parametrize("strategy", ["basic", "full", "approx", "dp"])
    def test_strategies_match_dijkstra(self, example, strategy):
        kwargs = {"budget_fraction": 0.5} if strategy in ("approx", "dp") else {}
        index = TDTreeIndex.build(
            example, strategy=strategy, max_points=None, **kwargs
        )
        rng = np.random.default_rng(0)
        vertices = sorted(example.vertices())
        for _ in range(30):
            source, target = (int(v) for v in rng.choice(vertices, size=2, replace=False))
            departure = float(rng.uniform(0.0, 60.0))
            reference = earliest_arrival(example, source, target, departure)
            assert index.query(source, target, departure).cost == pytest.approx(
                reference.cost, rel=1e-6, abs=1e-6
            )

    def test_query_q_12_15_from_example_3_3(self, example):
        """The paper's worked query Q(v12, v15, t) is answerable and symmetric
        in cost with the reverse direction (the example's weights are symmetric)."""
        index = TDTreeIndex.build(example, strategy="full", max_points=None)
        forward = index.query(12, 15, 10.0)
        backward = index.query(15, 12, 10.0)
        reference = earliest_arrival(example, 12, 15, 10.0)
        assert forward.cost == pytest.approx(reference.cost, rel=1e-9)
        assert backward.cost > 0

    def test_profile_query_between_figure_vertices(self, example):
        index = TDTreeIndex.build(example, strategy="full", max_points=None)
        profile = index.profile(1, 9)
        exact = profile_search(example, 1)[9]
        assert exact.max_difference(profile.function, samples=300) < 1e-6


class TestShortcutExampleFromSection4:
    def test_shortcut_weight_counts_interpolation_points(self):
        """Example 4.1: a pair with 3 + 2 points has weight 5."""
        from repro.core.shortcuts import ShortcutPair

        pair = ShortcutPair(
            lower=12,
            upper=3,
            forward=PiecewiseLinearFunction.from_points([(0, 6), (30, 9), (60, 30)]),
            backward=PiecewiseLinearFunction.from_points([(0, 10), (60, 20)]),
        )
        assert pair.weight == 5
