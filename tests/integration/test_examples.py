"""Smoke tests for the runnable example scripts.

The examples double as living documentation; these tests make sure each one
imports, exposes a ``main`` function, and the cheapest one runs end-to-end.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLE_FILES = [
    "quickstart.py",
    "commute_planner.py",
    "fleet_dispatch.py",
    "live_traffic.py",
    "index_tuning.py",
    "serving_walkthrough.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_examples_directory_has_all_scripts(self):
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert set(EXAMPLE_FILES) <= present

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_example_defines_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None))

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_example_has_module_docstring(self, name):
        module = load_example(name)
        assert module.__doc__ and len(module.__doc__) > 80


@pytest.mark.integration
class TestQuickstartRuns:
    def test_quickstart_main_executes(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "network:" in output
        assert "query 0 ->" in output
        assert "profile query" in output


@pytest.mark.integration
class TestServingWalkthroughRuns:
    def test_serving_walkthrough_main_executes(self, capsys):
        module = load_example("serving_walkthrough.py")
        module.main()
        output = capsys.readouterr().out
        assert "snapshot: format v" in output
        assert "x faster" in output
        assert "cache invalidated" in output
