"""End-to-end integration tests across the whole stack.

These exercise realistic user journeys: generate or load a network, persist
it, build several indexes, answer both query types, update weights, and keep
everything consistent with the index-free ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDTreeIndex
from repro.baselines import TDDijkstra, TDGTree, earliest_arrival
from repro.datasets import generate_queries, load_dataset
from repro.graph import (
    WeightGenerator,
    load_graph_json,
    random_geometric_network,
    save_graph_json,
    validate_graph,
)


@pytest.mark.integration
class TestFullPipelineOnCatalogDataset:
    def test_cal_dataset_pipeline(self, tmp_path):
        # 1. Load the scaled dataset and persist/reload it.
        graph = load_dataset("CAL", num_points=3)
        path = tmp_path / "cal.json"
        save_graph_json(graph, path)
        graph = load_graph_json(path)
        assert validate_graph(graph).is_valid

        # 2. Build the paper's index and the strongest baseline.
        index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.35)
        dijkstra = TDDijkstra.build(graph)

        # 3. Answer the paper-style workload with both and compare.
        workload = generate_queries(graph, num_pairs=15, num_intervals=3, seed=0)
        worst = 0.0
        for query in workload:
            fast = index.query(query.source, query.target, query.departure).cost
            slow = dijkstra.query(query.source, query.target, query.departure).cost
            assert fast >= slow - 1e-6
            worst = max(worst, (fast - slow) / max(slow, 1e-9))
        assert worst < 0.02  # capped functions stay within 2% on this workload

        # 4. Profiles evaluated at the workload departure times agree with the
        #    scalar answers.
        pair = workload.pairs()[0]
        profile = index.profile(*pair)
        scalar = index.query(pair[0], pair[1], 30_000.0)
        assert profile.cost_at(30_000.0) == pytest.approx(scalar.cost, rel=1e-6)


@pytest.mark.integration
class TestIndexesAgreeOnPlanarNetwork:
    def test_three_indexes_agree(self, planar_network):
        graph = planar_network
        rng = np.random.default_rng(5)
        appro = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.3)
        basic = TDTreeIndex.build(graph, strategy="basic")
        gtree = TDGTree.build(graph, leaf_size=16)
        vertices = sorted(graph.vertices())
        for _ in range(15):
            source, target = (int(v) for v in rng.choice(vertices, size=2, replace=False))
            departure = float(rng.uniform(0, 86_400))
            reference = earliest_arrival(graph, source, target, departure).cost
            a = appro.query(source, target, departure).cost
            b = basic.query(source, target, departure).cost
            g = gtree.query(source, target, departure).cost
            assert a == pytest.approx(reference, rel=0.02)
            assert b == pytest.approx(reference, rel=0.02)
            assert g >= reference - 1e-6
            assert g <= reference * 1.25 + 1e-6


@pytest.mark.integration
class TestLiveUpdateScenario:
    def test_day_of_operations(self):
        """Morning build, mid-day incident, evening re-planning."""
        graph = random_geometric_network(80, num_points=3, seed=77)
        index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.4)
        rng = np.random.default_rng(7)
        generator = WeightGenerator(3, seed=78)

        vertices = sorted(graph.vertices())
        depot, customer = int(vertices[0]), int(vertices[-1])
        morning = index.query(depot, customer, 8 * 3600.0).cost

        # Incident: perturb a batch of edges at noon.
        edges = sorted(graph.edges())
        chosen = rng.choice(len(edges), size=12, replace=False)
        changes = {}
        for edge_index in chosen:
            u, v, weight = edges[int(edge_index)]
            changes[(u, v)] = generator.perturbed(weight, scale=0.6)
        report = index.update_edges(changes)
        assert report.num_changed_edges == len(changes)

        # Evening queries still match the ground truth on the updated network.
        for _ in range(10):
            source, target = (int(v) for v in rng.choice(vertices, size=2, replace=False))
            departure = float(rng.uniform(15 * 3600.0, 20 * 3600.0))
            reference = earliest_arrival(graph, source, target, departure).cost
            assert index.query(source, target, departure).cost == pytest.approx(
                reference, rel=0.02
            )
        # The depot-to-customer cost is still a sane number.
        evening = index.query(depot, customer, 18 * 3600.0).cost
        assert evening > 0 and morning > 0
