"""Tests for the query-workload generator."""

from __future__ import annotations

import pytest

from repro.datasets import generate_pairs, generate_queries
from repro.exceptions import DatasetError
from repro.functions import DAY_SECONDS
from repro.graph import TDGraph
from repro.functions import PiecewiseLinearFunction


class TestGeneratePairs:
    def test_count_and_validity(self, small_grid):
        pairs = generate_pairs(small_grid, 50, seed=1)
        assert len(pairs) == 50
        vertices = set(small_grid.vertices())
        for source, target in pairs:
            assert source in vertices and target in vertices
            assert source != target

    def test_deterministic(self, small_grid):
        assert generate_pairs(small_grid, 20, seed=3) == generate_pairs(
            small_grid, 20, seed=3
        )

    def test_different_seeds_differ(self, small_grid):
        assert generate_pairs(small_grid, 20, seed=3) != generate_pairs(
            small_grid, 20, seed=4
        )

    def test_rejects_nonpositive_count(self, small_grid):
        with pytest.raises(DatasetError):
            generate_pairs(small_grid, 0)

    def test_rejects_tiny_graphs(self):
        graph = TDGraph()
        graph.add_vertex(0)
        with pytest.raises(DatasetError):
            generate_pairs(graph, 5)


class TestGenerateQueries:
    def test_paper_scheme_pairs_times_intervals(self, small_grid):
        workload = generate_queries(small_grid, num_pairs=10, num_intervals=10, seed=0)
        assert len(workload) == 100

    def test_departures_cover_their_interval(self, small_grid):
        workload = generate_queries(small_grid, num_pairs=3, num_intervals=4, seed=2)
        interval = DAY_SECONDS / 4
        per_pair = {}
        for query in workload:
            per_pair.setdefault((query.source, query.target), []).append(query.departure)
        for departures in per_pair.values():
            assert len(departures) == 4
            for index, departure in enumerate(departures):
                assert index * interval <= departure <= (index + 1) * interval

    def test_pairs_method_deduplicates_in_order(self, small_grid):
        workload = generate_queries(small_grid, num_pairs=5, num_intervals=3, seed=1)
        pairs = workload.pairs()
        assert len(pairs) == 5
        assert len(set(pairs)) == 5

    def test_queries_reference_existing_vertices(self, small_grid):
        workload = generate_queries(small_grid, num_pairs=8, num_intervals=2, seed=9)
        vertices = set(small_grid.vertices())
        for query in workload:
            assert query.source in vertices
            assert query.target in vertices
            assert 0.0 <= query.departure <= DAY_SECONDS

    def test_dataset_label_carried(self, small_grid):
        workload = generate_queries(
            small_grid, num_pairs=2, num_intervals=2, seed=0, dataset="CAL"
        )
        assert workload.dataset == "CAL"

    def test_invalid_intervals_rejected(self, small_grid):
        with pytest.raises(DatasetError):
            generate_queries(small_grid, num_pairs=2, num_intervals=0)

    def test_workload_is_deterministic(self, small_grid):
        first = generate_queries(small_grid, num_pairs=4, num_intervals=3, seed=7)
        second = generate_queries(small_grid, num_pairs=4, num_intervals=3, seed=7)
        assert list(first) == list(second)


def test_query_dataclass_is_frozen():
    from repro.datasets import Query

    query = Query(1, 2, 3.0)
    with pytest.raises(AttributeError):
        query.source = 9  # type: ignore[misc]
