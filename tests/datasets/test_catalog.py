"""Tests for the scaled dataset catalog."""

from __future__ import annotations

import pytest

from repro.datasets import CATALOG, dataset_names, get_spec, load_dataset
from repro.exceptions import DatasetError
from repro.graph import validate_graph


class TestCatalogContents:
    def test_five_paper_datasets_present(self):
        assert dataset_names() == ["CAL", "SF", "COL", "FLA", "W-USA"]

    def test_paper_statistics_recorded(self):
        spec = get_spec("FLA")
        assert spec.paper_vertices == 1_070_376
        assert spec.paper_edges == 2_712_798
        assert spec.paper_budget == "100M"

    def test_scaled_sizes_preserve_the_paper_ordering(self):
        sizes = [CATALOG[name].size for name in dataset_names()]
        # CAL is a grid (size = side length) so compare from SF onwards.
        assert sizes[1] < sizes[2] < sizes[3] < sizes[4]

    def test_lookup_is_case_insensitive(self):
        assert get_spec("cal").name == "CAL"
        assert get_spec("w-usa").name == "W-USA"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            get_spec("MARS")
        with pytest.raises(DatasetError):
            load_dataset("MARS")


class TestLoading:
    @pytest.mark.parametrize("name", ["CAL", "SF"])
    def test_loaded_networks_are_valid(self, name):
        graph = load_dataset(name, num_points=3)
        report = validate_graph(graph)
        assert report.is_valid
        assert graph.num_vertices >= 50

    def test_deterministic(self):
        first = load_dataset("CAL", num_points=3)
        second = load_dataset("CAL", num_points=3)
        assert first.num_edges == second.num_edges
        assert sorted((u, v) for u, v, _ in first.edges()) == sorted(
            (u, v) for u, v, _ in second.edges()
        )

    def test_seed_offset_gives_an_independent_instance(self):
        first = load_dataset("CAL", num_points=3)
        second = load_dataset("CAL", num_points=3, seed_offset=5)
        # Same scale and both valid, but an independent random instance.
        assert first.num_vertices == second.num_vertices
        assert validate_graph(second).is_valid
        assert sorted((u, v) for u, v, _ in first.edges()) != sorted(
            (u, v) for u, v, _ in second.edges()
        )

    def test_c_parameter_controls_profile_size(self):
        for c in (2, 4):
            graph = load_dataset("CAL", num_points=c)
            assert max(w.size for _, _, w in graph.edges()) <= c

    def test_invalid_c_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("CAL", num_points=0)

    def test_spec_generate_unknown_kind(self):
        from dataclasses import replace

        spec = replace(get_spec("CAL"), kind="moebius")
        with pytest.raises(DatasetError):
            spec.generate()
