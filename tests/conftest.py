"""Shared fixtures for the test-suite.

The expensive objects (generated road networks and built indexes) are session
scoped: they are deterministic, read-only in the tests that use them, and
building them once keeps the whole suite fast.  Tests that mutate an index
(e.g. the update tests) build their own private copies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import TDGraph, TDTreeIndex

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
# CI runs derandomized: property tests explore the same example sequence on
# every run, so new counterexamples are discovered locally (where the random
# exploration and the example database live) instead of surfacing as flaky
# CI reds.  Locally the default randomized profile keeps exploring; any
# discovery worth keeping gets pinned as an explicit ``@example`` (see
# tests/core/test_core_properties.py for the pattern).
settings.register_profile("ci", derandomize=True)
settings.register_profile("dev", settings.default)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev")
)
from repro.baselines import TDDijkstra
from repro.core import decompose
from repro.functions import PiecewiseLinearFunction
from repro.graph import grid_network, paper_example_graph, random_geometric_network


# ----------------------------------------------------------------------
# Small hand-built graphs
# ----------------------------------------------------------------------
@pytest.fixture()
def triangle_graph() -> TDGraph:
    """Three vertices, time-dependent detour: 0->1 direct vs 0->2->1."""
    graph = TDGraph()
    direct = PiecewiseLinearFunction.from_points([(0, 100), (43200, 400), (86400, 100)])
    leg_a = PiecewiseLinearFunction.from_points([(0, 120), (86400, 120)])
    leg_b = PiecewiseLinearFunction.from_points([(0, 130), (86400, 130)])
    graph.add_bidirectional_edge(0, 1, direct)
    graph.add_bidirectional_edge(0, 2, leg_a)
    graph.add_bidirectional_edge(2, 1, leg_b)
    return graph


@pytest.fixture()
def line_graph() -> TDGraph:
    """A 5-vertex path with constant weights (easy to reason about)."""
    graph = TDGraph()
    for i in range(4):
        weight = PiecewiseLinearFunction.constant(10.0 * (i + 1))
        graph.add_bidirectional_edge(i, i + 1, weight)
    return graph


@pytest.fixture(scope="session")
def example_graph() -> TDGraph:
    """The paper's 15-vertex running example (Fig. 1a)."""
    return paper_example_graph()


# ----------------------------------------------------------------------
# Generated road networks (session scoped, read-only)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_grid() -> TDGraph:
    """5x5 grid city with c=3 profiles: small enough for exact comparisons."""
    return grid_network(5, 5, num_points=3, seed=3)


@pytest.fixture(scope="session")
def medium_grid() -> TDGraph:
    """7x7 grid used where a little more structure is needed."""
    return grid_network(7, 7, num_points=3, seed=17)


@pytest.fixture(scope="session")
def planar_network() -> TDGraph:
    """A 120-vertex Delaunay road network (used by index-level tests)."""
    return random_geometric_network(120, num_points=3, seed=29)


# ----------------------------------------------------------------------
# Built indexes (session scoped, read-only)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_tree(small_grid):
    """Exact TFP tree decomposition of the small grid."""
    return decompose(small_grid, max_points=None)


@pytest.fixture(scope="session")
def basic_index(small_grid) -> TDTreeIndex:
    """TD-basic over the small grid, exact functions."""
    return TDTreeIndex.build(small_grid, strategy="basic", max_points=None)


@pytest.fixture(scope="session")
def full_index(small_grid) -> TDTreeIndex:
    """TD-H2H (all shortcuts) over the small grid, exact functions."""
    return TDTreeIndex.build(small_grid, strategy="full", max_points=None)


@pytest.fixture(scope="session")
def approx_index(small_grid) -> TDTreeIndex:
    """TD-appro over the small grid with a 40% budget and capped functions."""
    return TDTreeIndex.build(
        small_grid, strategy="approx", budget_fraction=0.4, max_points=16
    )


@pytest.fixture(scope="session")
def dp_index(small_grid) -> TDTreeIndex:
    """TD-dp over the small grid with a 40% budget and capped functions."""
    return TDTreeIndex.build(
        small_grid, strategy="dp", budget_fraction=0.4, max_points=16
    )


@pytest.fixture(scope="session")
def dijkstra(small_grid) -> TDDijkstra:
    """Index-free reference engine over the small grid."""
    return TDDijkstra.build(small_grid)


# ----------------------------------------------------------------------
# Query batches
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def random_od_pairs(small_grid) -> list[tuple[int, int, float]]:
    """A deterministic batch of (source, target, departure) triples."""
    rng = np.random.default_rng(123)
    vertices = np.asarray(sorted(small_grid.vertices()))
    batch = []
    for _ in range(25):
        source, target = rng.choice(vertices, size=2, replace=False)
        departure = float(rng.uniform(0.0, 86_400.0))
        batch.append((int(source), int(target), departure))
    return batch


def assert_cost_close(expected: float, actual: float, *, rel: float = 1e-6) -> None:
    """Assert two travel costs agree within a relative tolerance."""
    assert actual == pytest.approx(expected, rel=rel, abs=1e-6)
