"""Metrics registry: instruments, labels, buckets, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    bucket_percentile,
    get_registry,
    set_registry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("service",))
        counter.inc(2.0, service="a")
        counter.inc(3.0, service="a")
        counter.inc(1.0, service="b")
        assert counter.value(service="a") == 5.0
        assert counter.value(service="b") == 1.0
        with pytest.raises(ValueError):
            counter.inc(-1.0, service="a")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value() == 5.0

    def test_labels_child_is_bound_to_one_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("service",))
        child = counter.labels(service="prod")
        child.inc()
        child.inc(4.0)
        assert child.value == 5.0
        assert counter.value(service="prod") == 5.0
        assert counter.value(service="other") == 0.0

    def test_wrong_label_names_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("service",))
        with pytest.raises(ValueError):
            counter.inc(1.0, deployment="prod")

    def test_histogram_observe_and_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_ms")
        for value in (0.2, 0.2, 3.0, 80.0):
            hist.observe(value)
        snap = hist.value()
        assert snap.count == 4
        assert snap.sum == pytest.approx(83.4)
        # p50 falls in the (0.1, 0.25] bucket the two 0.2s landed in.
        assert 0.1 <= snap.percentile(50.0) <= 0.25
        assert snap.percentile(100.0) <= 100.0

    def test_histogram_observe_many_matches_observe(self):
        registry = MetricsRegistry()
        one = registry.histogram("one_ms", "", ("s",))
        many = registry.histogram("many_ms", "", ("s",))
        values = [0.05, 0.3, 1.5, 9.0, 9.0, 20_000.0]
        child_one = one.labels(s="x")
        for v in values:
            child_one.observe(v)
        many.labels(s="x").observe_many(values)
        assert one.value(s="x").counts == many.value(s="x").counts
        assert one.value(s="x").sum == pytest.approx(many.value(s="x").sum)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("service",))
        again = registry.counter("c_total", "help", ("service",))
        assert first is again

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "", ())
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("m")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("service",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("c_total", "", ("deployment",))

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_refresh_hooks_fire_before_collect_and_swallow_errors(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        calls = []

        def hook():
            calls.append(1)
            gauge.set(float(len(calls)))

        def bad_hook():
            raise RuntimeError("a dead source must not kill exports")

        registry.register_refresh_hook(hook)
        registry.register_refresh_hook(bad_hook)
        list(registry.collect())
        assert calls == [1]
        assert gauge.value() == 1.0
        registry.unregister_refresh_hook(hook)
        list(registry.collect())
        assert calls == [1]

    def test_default_registry_singleton_and_reset(self):
        previous = get_registry()
        try:
            mine = MetricsRegistry()
            assert set_registry(mine) is mine
            assert get_registry() is mine
            fresh = set_registry(None)
            assert fresh is not mine
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestConcurrency:
    def test_labeled_counter_hammer_eight_threads(self):
        """Satellite: exact totals under 8 concurrent writers per label set."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "", ("service",))
        hist = registry.histogram("hammer_ms", "", ("service",))
        threads_n, per_thread = 8, 2_000
        barrier = threading.Barrier(threads_n)

        def worker(i: int) -> None:
            label = "even" if i % 2 == 0 else "odd"
            child = counter.labels(service=label)
            h = hist.labels(service=label)
            barrier.wait()
            for j in range(per_thread):
                child.inc()
                h.observe(float(j % 7))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        expected = (threads_n // 2) * per_thread
        assert counter.value(service="even") == expected
        assert counter.value(service="odd") == expected
        assert hist.value(service="even").count == expected
        assert hist.value(service="odd").count == expected


class TestBucketPercentile:
    def test_empty_histogram_reports_zero(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        assert bucket_percentile(LATENCY_BUCKETS_MS, counts, 99.0) == 0.0

    def test_counts_length_must_include_overflow(self):
        with pytest.raises(ValueError):
            bucket_percentile(LATENCY_BUCKETS_MS, [0] * len(LATENCY_BUCKETS_MS), 50.0)

    def test_q_out_of_range_rejected(self):
        counts = [1] + [0] * len(LATENCY_BUCKETS_MS)
        with pytest.raises(ValueError):
            bucket_percentile(LATENCY_BUCKETS_MS, counts, 101.0)

    def test_overflow_bucket_reports_largest_finite_bound(self):
        counts = [0] * len(LATENCY_BUCKETS_MS) + [5]
        assert bucket_percentile(LATENCY_BUCKETS_MS, counts, 99.0) == (
            LATENCY_BUCKETS_MS[-1]
        )

    def test_interpolates_within_the_located_bucket(self):
        # 10 observations in (1.0, 2.5]: p50 sits mid-bucket.
        bounds = (1.0, 2.5, 5.0)
        counts = [0, 10, 0, 0]
        p50 = bucket_percentile(bounds, counts, 50.0)
        assert 1.0 < p50 < 2.5

    def test_merged_buckets_are_exact_percentiles_of_the_union(self):
        bounds = LATENCY_BUCKETS_MS
        fast = [0] * (len(bounds) + 1)
        slow = [0] * (len(bounds) + 1)
        fast[3] = 90  # 90 answers in (0.5, 1.0] ms
        slow[14] = 10  # 10 answers in (2500, 10000] ms
        merged = [a + b for a, b in zip(fast, slow)]
        p99 = bucket_percentile(bounds, merged, 99.0)
        assert 2_500.0 < p99 <= 10_000.0
        p50 = bucket_percentile(bounds, merged, 50.0)
        assert p50 <= 1.0
