"""Exporters: Prometheus exposition golden test and JSON snapshots."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    Observability,
    to_json_snapshot,
    to_prometheus_text,
)

#: Satellite: the exposition format is pinned byte-for-byte.  The future ASGI
#: gateway serves this text verbatim, so accidental format drift must fail.
GOLDEN = """\
# HELP repro_service_queries_total Queries accepted by submit.
# TYPE repro_service_queries_total counter
repro_service_queries_total{service="prod"} 42
repro_service_queries_total{service="staging"} 7
# HELP repro_service_in_flight Queries currently in flight.
# TYPE repro_service_in_flight gauge
repro_service_in_flight{service="prod"} 3.5
# HELP repro_service_latency_ms Submit-to-answer latency.
# TYPE repro_service_latency_ms histogram
repro_service_latency_ms_bucket{service="prod",le="1"} 0
repro_service_latency_ms_bucket{service="prod",le="5"} 2
repro_service_latency_ms_bucket{service="prod",le="10"} 3
repro_service_latency_ms_bucket{service="prod",le="+Inf"} 4
repro_service_latency_ms_sum{service="prod"} 31.5
repro_service_latency_ms_count{service="prod"} 4
"""


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    queries = registry.counter(
        "repro_service_queries_total", "Queries accepted by submit.", ("service",)
    )
    queries.inc(42.0, service="prod")
    queries.inc(7.0, service="staging")
    registry.gauge(
        "repro_service_in_flight", "Queries currently in flight.", ("service",)
    ).set(3.5, service="prod")
    latency = registry.histogram(
        "repro_service_latency_ms",
        "Submit-to-answer latency.",
        ("service",),
        buckets=(1.0, 5.0, 10.0),
    )
    latency.labels(service="prod").observe_many([2.0, 3.0, 6.5, 20.0])
    return registry


class TestPrometheusText:
    def test_exposition_golden(self):
        assert to_prometheus_text(_golden_registry()) == GOLDEN

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("s",)).inc(1.0, s='a"b\\c\nd')
        text = to_prometheus_text(registry)
        assert 'c_total{s="a\\"b\\\\c\\nd"} 1' in text

    def test_help_newlines_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "line one\nline two").set(1.0)
        assert "# HELP g line one\\nline two" in to_prometheus_text(registry)

    def test_label_sets_render_sorted(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("s",))
        counter.inc(1.0, s="zebra")
        counter.inc(1.0, s="apple")
        text = to_prometheus_text(registry)
        assert text.index('s="apple"') < text.index('s="zebra"')


class TestJsonSnapshot:
    def test_snapshot_shape_and_round_trip(self):
        snapshot = to_json_snapshot(_golden_registry())
        # Must survive json serialisation (the experiment grid stores these).
        snapshot = json.loads(json.dumps(snapshot))
        metrics = snapshot["metrics"]
        queries = metrics["repro_service_queries_total"]
        assert queries["kind"] == "counter"
        assert queries["labelnames"] == ["service"]
        assert {s["labels"]["service"]: s["value"] for s in queries["samples"]} == {
            "prod": 42.0,
            "staging": 7.0,
        }
        latency = metrics["repro_service_latency_ms"]
        assert latency["buckets"] == [1.0, 5.0, 10.0]
        (sample,) = latency["samples"]
        assert sample["counts"] == [0, 2, 1, 1]
        assert sample["count"] == 4


class TestObservabilityBundle:
    def test_metrics_text_refreshes_pull_sources(self):
        obs = Observability()
        gauge = obs.registry.gauge("pull_g")
        obs.registry.register_refresh_hook(lambda: gauge.set(9.0))
        assert "pull_g 9" in obs.metrics_text()
        assert obs.metrics_json()["metrics"]["pull_g"]["samples"][0]["value"] == 9.0

    def test_disabled_bundle_still_exports(self):
        obs = Observability.disabled()
        assert obs.enabled is False
        assert obs.metrics_text() == ""
