"""Span/trace lifecycle, the tracer ring, and serving-layer completeness."""

from __future__ import annotations

import json

import pytest

from repro.api import create_engine
from repro.obs import (
    STATUS_ERROR,
    STATUS_OK,
    Observability,
    Tracer,
)
from repro.serving import InjectedFaultError, QueryService
from repro.utils.timing import FakeClock


class TestSpanLifecycle:
    def test_spans_measure_on_the_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, jsonl_path=None)
        trace = tracer.trace("query", service="prod")
        clock.advance(0.5)
        span = trace.span("engine")
        clock.advance(0.25)
        trace.end(span)
        assert span.status == STATUS_OK
        assert span.duration == pytest.approx(0.25)
        assert span.parent is trace.root
        trace.finish()
        assert trace.complete
        assert trace.duration == pytest.approx(0.75)

    def test_end_is_first_wins(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.trace("query")
        span = trace.span("engine")
        trace.end(span, STATUS_ERROR, "boom")
        trace.end(span, STATUS_OK)  # no-op: the error status sticks
        assert span.status == STATUS_ERROR
        assert span.detail == "boom"

    def test_finish_closes_orphaned_spans_with_the_final_status(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.trace("query")
        orphan = trace.span("pending")  # never explicitly ended
        trace.finish(STATUS_ERROR, "WorkerCrashedError")
        assert trace.complete
        assert orphan.status == STATUS_ERROR
        assert orphan.detail == "WorkerCrashedError"
        assert trace.status == STATUS_ERROR

    def test_finish_records_exactly_once(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.trace("query")
        trace.finish()
        trace.finish(STATUS_ERROR)  # idempotent: first settle wins
        assert tracer.completed == 1
        assert trace.status == STATUS_OK

    def test_find_and_to_dict(self):
        tracer = Tracer(clock=FakeClock())
        trace = tracer.trace("query", source=1, target=2)
        trace.span("admission")
        trace.finish()
        assert trace.find("admission") is not None
        assert trace.find("missing") is None
        payload = trace.to_dict()
        assert payload["name"] == "query"
        assert payload["attrs"] == {"source": 1, "target": 2}
        assert [s["name"] for s in payload["spans"]] == ["query", "admission"]


class TestTracer:
    def test_ring_is_bounded_newest_last(self):
        tracer = Tracer(clock=FakeClock(), ring_size=3)
        for i in range(5):
            tracer.trace("query", i=i).finish()
        recent = tracer.recent()
        assert len(recent) == 3
        assert [t.attrs["i"] for t in recent] == [2, 3, 4]
        assert [t.attrs["i"] for t in tracer.recent(2)] == [3, 4]
        assert tracer.started == 5
        assert tracer.completed == 5

    def test_jsonl_sampling(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(clock=FakeClock(), sample_every=2, jsonl_path=str(path))
        for i in range(5):
            tracer.trace("query", i=i).finish()
        tracer.close()
        sampled = [json.loads(line) for line in path.read_text().splitlines()]
        # Every 2nd completion: the 2nd and 4th traces.
        assert [t["attrs"]["i"] for t in sampled] == [1, 3]

    def test_sample_every_zero_disables_the_log(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(clock=FakeClock(), sample_every=0, jsonl_path=str(path))
        tracer.trace("query").finish()
        tracer.close()
        assert not path.exists()


class TestServiceTraces:
    def test_every_answered_query_yields_a_complete_span_tree(self, approx_index):
        obs = Observability()
        service = QueryService(
            approx_index, max_batch_size=4, max_wait_ms=60_000.0,
            cache_size=16, name="traced", obs=obs,
        )
        try:
            futures = [service.submit(v, 24 - v, 0.0) for v in range(4)]
            for future in futures:
                assert future.result(5.0) > 0.0
            # A cache hit gets a trace too (no pending/engine spans).
            assert service.submit(0, 24, 0.0).result(5.0) > 0.0
        finally:
            service.close()
        traces = service.recent_traces()
        assert len(traces) == 5
        for trace in traces:
            assert trace.complete
            assert trace.status == STATUS_OK
        batched = [t for t in traces if not t.attrs.get("cache_hit")]
        assert len(batched) == 4
        for trace in batched:
            assert [s.name for s in trace.spans] == [
                "query", "admission", "pending", "engine",
            ]
        (hit,) = [t for t in traces if t.attrs.get("cache_hit")]
        assert hit.find("engine") is None

    def test_worker_crash_settles_orphaned_spans_with_error_status(
        self, small_grid
    ):
        """Satellite: crash paths still yield complete traces."""
        obs = Observability()
        engine = create_engine(
            "faulty:td-appro?budget_fraction=0.4&max_points=16&crash_batch=1",
            small_grid,
        )
        service = QueryService(
            engine, max_batch_size=4, max_wait_ms=60_000.0,
            cache_size=0, name="crashy", obs=obs,
        )
        try:
            futures = [service.submit(v, 24 - v, 0.0) for v in range(4)]
            service.flush()
            for future in futures:
                assert isinstance(future.exception(5.0), InjectedFaultError)
        finally:
            service.close()
        traces = service.recent_traces()
        assert len(traces) == 4
        for trace in traces:
            assert trace.complete  # the engine span was open at crash time
            assert trace.status == STATUS_ERROR
            assert trace.root.detail == "InjectedFaultError"
            engine_span = trace.find("engine")
            assert engine_span is not None
            assert engine_span.status == STATUS_ERROR

    def test_disabled_observability_records_nothing(self, approx_index):
        obs = Observability.disabled()
        service = QueryService(
            approx_index, max_batch_size=2, max_wait_ms=60_000.0,
            cache_size=0, obs=obs,
        )
        try:
            assert service.submit(0, 24, 0.0) and service.submit(1, 23, 0.0)
        finally:
            service.close()
        assert service.recent_traces() == []
        assert obs.tracer.started == 0
