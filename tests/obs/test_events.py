"""Structured event log: round-trips, and one event per control-plane change."""

from __future__ import annotations

import pytest

from repro.exceptions import AdmissionRejectedError, DeadlineExceededError
from repro.obs import (
    EVENT_DEADLINE,
    EVENT_DEPLOY,
    EVENT_FAULT,
    EVENT_HEALTH,
    EVENT_RECOVERY,
    EVENT_SHED,
    EVENT_SWAP,
    EVENT_UNDEPLOY,
    Event,
    EventLog,
    MetricsRegistry,
    Observability,
    read_events,
)
from repro.serving import EngineHost, HealthState, SupervisionConfig
from repro.utils.timing import FakeClock

FAULT_FREE = "td-appro?budget_fraction=0.4&max_points=16"
POISONED = f"faulty:{FAULT_FREE}&poison_from=1"
MANUAL = {"max_batch_size": 64, "max_wait_ms": 60_000.0, "cache_size": 0}


def _config(**overrides):
    defaults = {
        "interval_ms": 60_000.0,
        "wedge_timeout_ms": 60_000.0,
        "failure_threshold": 1,
        "recovery_checks": 2,
        "max_restarts": 3,
    }
    defaults.update(overrides)
    return SupervisionConfig(**defaults)


class TestEventLog:
    def test_emit_filter_and_ring_bound(self):
        clock = FakeClock()
        log = EventLog(capacity=3, clock=clock)
        log.emit("deploy", "prod", spec="td-appro")
        clock.advance(1.0)
        log.emit("swap", "prod")
        log.emit("swap", "staging")
        log.emit("undeploy", "prod")
        assert log.total == 4
        assert len(log) == 3  # the deploy fell off the ring
        assert [e.kind for e in log.events()] == ["swap", "swap", "undeploy"]
        assert [e.subject for e in log.events(kind="swap")] == ["prod", "staging"]
        assert [e.kind for e in log.events(subject="prod")] == ["swap", "undeploy"]
        assert log.events(kind="swap")[0].at == pytest.approx(1.0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(clock=FakeClock(), jsonl_path=path)
        emitted = [
            log.emit("deploy", "prod", spec="td-appro", fallback=None),
            log.emit("supervision.recovery", "prod", action="restart", failed=3),
        ]
        log.close()
        loaded = read_events(path)
        assert loaded == emitted
        assert isinstance(loaded[0], Event)
        assert loaded[1].fields == {"action": "restart", "failed": 3}

    def test_registry_mirror_counts_by_kind(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.emit("swap", "prod")
        log.emit("swap", "prod")
        log.emit("shed", "svc")
        counter = registry.counter("repro_events_total", "", ("kind",))
        assert counter.value(kind="swap") == 2.0
        assert counter.value(kind="shed") == 1.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestControlPlaneEvents:
    def test_deploy_swap_undeploy_each_emit_once(self, small_grid):
        obs = Observability()
        with EngineHost(**MANUAL, obs=obs) as host:
            host.deploy("prod", FAULT_FREE, small_grid)
            host.swap("prod", FAULT_FREE, small_grid)
            host.undeploy("prod")
        (deploy,) = obs.events.events(kind=EVENT_DEPLOY)
        assert deploy.subject == "prod"
        assert deploy.fields["spec"] == FAULT_FREE
        (swap,) = obs.events.events(kind=EVENT_SWAP)
        assert swap.fields["new_spec"] == FAULT_FREE
        assert swap.fields["build_seconds"] >= 0.0
        (undeploy,) = obs.events.events(kind=EVENT_UNDEPLOY)
        assert undeploy.subject == "prod"

    def test_shed_and_deadline_events(self, approx_index):
        obs = Observability()
        with EngineHost(
            max_batch_size=64, max_wait_ms=60_000.0, cache_size=0,
            max_pending=1, admission_policy="shed", obs=obs,
        ) as host:
            host.deploy("prod", approx_index)
            host.submit("prod", 0, 24, 0.0)
            with pytest.raises(AdmissionRejectedError):
                # Bypass the host's retry loop: submit on the service itself.
                host._service("prod").submit(1, 23, 0.0)
            (shed,) = obs.events.events(kind=EVENT_SHED)
            assert shed.fields["policy"] == "shed"
            host.flush("prod")  # free the admission slot
            doomed = host.submit("prod", 2, 22, 0.0, deadline_ms=0.001)
            assert isinstance(doomed.exception(5.0), DeadlineExceededError)
            (deadline,) = obs.events.events(kind=EVENT_DEADLINE)
            assert deadline.fields["deadline_ms"] == pytest.approx(0.001)

    def test_fault_injections_land_in_the_deployment_timeline(self, small_grid):
        obs = Observability()
        with EngineHost(**MANUAL, supervision=_config(), obs=obs) as host:
            host.deploy("prod", POISONED, small_grid)
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert doomed.done()
        faults = obs.events.events(kind=EVENT_FAULT)
        assert len(faults) >= 1
        assert faults[0].fields["fault"] == "poison"
        assert faults[0].fields["batch"] == 1


class TestSupervisionTransitions:
    """Acceptance: every supervision transition appears exactly once."""

    def _recovery_actions(self, obs):
        return [e.fields["action"] for e in obs.events.events(kind=EVENT_RECOVERY)]

    def test_restart_and_promotion_emit_exactly_once(self, small_grid):
        obs = Observability()
        crash_once = f"faulty:{FAULT_FREE}&crash_batch=1"
        with EngineHost(**MANUAL, supervision=_config(), obs=obs) as host:
            host.deploy("prod", crash_once, small_grid)
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert doomed.done()
            assert host.check()["prod"].action == "restart"
            host.check(), host.check()  # two clean passes promote to HEALTHY
            assert host.health("prod").state is HealthState.HEALTHY
        assert self._recovery_actions(obs) == ["restart"]
        health = obs.events.events(kind=EVENT_HEALTH, subject="prod")
        assert [e.fields["state"] for e in health] == ["degraded", "healthy"]

    def test_rehydrate_emits_exactly_once(self, small_grid, tmp_path):
        obs = Observability()
        with EngineHost(
            **MANUAL, supervision=_config(max_restarts=0), obs=obs
        ) as host:
            host.deploy("prod", POISONED, small_grid)
            host.snapshot("prod", tmp_path / "snap")
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert doomed.done()
            assert host.check()["prod"].action == "rehydrate"
        assert self._recovery_actions(obs) == ["rehydrate"]

    def test_fallback_then_park_escalation_each_exactly_once(self, small_grid):
        obs = Observability()
        with EngineHost(
            **MANUAL, supervision=_config(max_restarts=1), obs=obs
        ) as host:
            host.deploy("prod", POISONED, small_grid, fallback="td-dijkstra")
            for expected in ("restart", "fallback"):
                doomed = host.submit("prod", 0, 24, 0.0)
                host.flush("prod")
                assert doomed.done()
                assert host.check()["prod"].action == expected
            assert host.health("prod").state is HealthState.UNHEALTHY
        assert self._recovery_actions(obs) == ["restart", "fallback"]
        health = obs.events.events(kind=EVENT_HEALTH, subject="prod")
        assert [e.fields["state"] for e in health] == ["degraded", "unhealthy"]

    def test_park_emits_exactly_once(self, small_grid):
        obs = Observability()
        with EngineHost(
            **MANUAL, supervision=_config(max_restarts=0), obs=obs
        ) as host:
            host.deploy("prod", POISONED, small_grid)
            doomed = host.submit("prod", 0, 24, 0.0)
            host.flush("prod")
            assert doomed.done()
            assert host.check()["prod"].action == "park"
            assert host.check() == {}  # parked: later passes stay silent
        assert self._recovery_actions(obs) == ["park"]
        health = obs.events.events(kind=EVENT_HEALTH, subject="prod")
        assert [e.fields["state"] for e in health] == ["unhealthy"]
