"""Unit tests for the profile helpers (:mod:`repro.functions.profile`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidFunctionError
from repro.functions import (
    DAY_SECONDS,
    PiecewiseLinearFunction,
    average_cost,
    lower_bound,
    merge_profiles,
    relative_error,
    sample_profile,
    upper_bound,
)


@pytest.fixture()
def wavy_profile() -> PiecewiseLinearFunction:
    return PiecewiseLinearFunction.from_points(
        [(0, 100), (21_600, 300), (43_200, 150), (64_800, 350), (86_400, 120)]
    )


class TestBounds:
    def test_lower_bound(self, wavy_profile):
        assert lower_bound(wavy_profile) == 100.0

    def test_upper_bound(self, wavy_profile):
        assert upper_bound(wavy_profile) == 350.0

    def test_day_constant(self):
        assert DAY_SECONDS == 86_400.0


class TestSampling:
    def test_sample_shape_and_range(self, wavy_profile):
        grid, values = sample_profile(wavy_profile, samples=25)
        assert grid.shape == (25,)
        assert values.shape == (25,)
        assert grid[0] == 0.0
        assert grid[-1] == DAY_SECONDS

    def test_sample_values_match_evaluation(self, wavy_profile):
        grid, values = sample_profile(wavy_profile, samples=11)
        assert np.allclose(values, wavy_profile.evaluate(grid))

    def test_sample_requires_two_points(self, wavy_profile):
        with pytest.raises(InvalidFunctionError):
            sample_profile(wavy_profile, samples=1)


class TestMergeAndError:
    def test_merge_profiles_is_lower_envelope(self, wavy_profile):
        alternative = PiecewiseLinearFunction.constant(200.0)
        merged = merge_profiles([wavy_profile, alternative])
        grid = np.linspace(0, DAY_SECONDS, 500)
        expected = np.minimum(wavy_profile.evaluate(grid), 200.0)
        assert np.allclose(merged.evaluate(grid), expected)

    def test_average_cost_of_constant(self):
        func = PiecewiseLinearFunction.constant(120.0)
        assert average_cost(func) == pytest.approx(120.0)

    def test_average_cost_rejects_empty_window(self):
        func = PiecewiseLinearFunction.constant(120.0)
        with pytest.raises(InvalidFunctionError):
            average_cost(func, start=10.0, end=10.0)

    def test_relative_error_zero_for_identical(self, wavy_profile):
        assert relative_error(wavy_profile, wavy_profile) == 0.0

    def test_relative_error_detects_scaling(self, wavy_profile):
        scaled = PiecewiseLinearFunction(
            wavy_profile.times, wavy_profile.costs * 1.1, validate=False
        )
        error = relative_error(scaled, wavy_profile)
        assert error == pytest.approx(0.1, rel=1e-3)
