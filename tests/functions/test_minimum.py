"""Unit tests for the pointwise ``minimum`` operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidFunctionError
from repro.functions import PiecewiseLinearFunction, minimum, minimum_of


class TestMinimumBasics:
    def test_constant_functions(self):
        low = PiecewiseLinearFunction.constant(5.0)
        high = PiecewiseLinearFunction.constant(9.0)
        assert minimum(low, high) is low
        assert minimum(high, low) is low

    def test_dominated_function_is_returned_unchanged(self):
        low = PiecewiseLinearFunction.from_points([(0, 10), (100, 20)])
        high = PiecewiseLinearFunction.from_points([(0, 30), (100, 40)])
        assert minimum(low, high) is low
        assert minimum(high, low) is low

    def test_pointwise_values_are_the_minimum(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 30)])
        second = PiecewiseLinearFunction.from_points([(0, 30), (100, 10)])
        result = minimum(first, second)
        grid = np.linspace(-50, 150, 500)
        expected = np.minimum(first.evaluate(grid), second.evaluate(grid))
        assert np.allclose(result.evaluate(grid), expected, atol=1e-9)

    def test_crossing_point_becomes_breakpoint(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 30)])
        second = PiecewiseLinearFunction.from_points([(0, 30), (100, 10)])
        result = minimum(first, second)
        # They cross exactly at t=50.
        assert np.any(np.isclose(result.times, 50.0))
        assert result.evaluate(50.0) == pytest.approx(20.0)

    def test_result_never_exceeds_either_input(self):
        rng = np.random.default_rng(4)
        times = np.linspace(0, 86_400, 6)
        first = PiecewiseLinearFunction(times, rng.uniform(100, 1000, size=6))
        second = PiecewiseLinearFunction(times, rng.uniform(100, 1000, size=6))
        result = minimum(first, second)
        grid = np.linspace(0, 86_400, 3_000)
        assert np.all(result.evaluate(grid) <= first.evaluate(grid) + 1e-9)
        assert np.all(result.evaluate(grid) <= second.evaluate(grid) + 1e-9)

    def test_commutative_in_value(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (50, 40), (100, 5)])
        second = PiecewiseLinearFunction.from_points([(0, 20), (60, 8), (100, 25)])
        grid = np.linspace(0, 100, 400)
        assert np.allclose(
            minimum(first, second).evaluate(grid),
            minimum(second, first).evaluate(grid),
            atol=1e-9,
        )


class TestMinimumVia:
    def test_via_tracks_the_winner(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 30)], via=1)
        second = PiecewiseLinearFunction.from_points([(0, 30), (100, 10)], via=2)
        result = minimum(first, second)
        assert result.via_at(10.0) == 1  # first wins early
        assert result.via_at(90.0) == 2  # second wins late

    def test_tie_prefers_first(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 10)], via=1)
        second = PiecewiseLinearFunction.from_points([(0, 10), (100, 10)], via=2)
        result = minimum(first, second)
        assert result.via_at(50.0) == 1


class TestMinimumOf:
    def test_requires_at_least_one_function(self):
        with pytest.raises(InvalidFunctionError):
            minimum_of([])

    def test_single_function_returned_as_is(self):
        func = PiecewiseLinearFunction.constant(3.0)
        assert minimum_of([func]) is func

    def test_many_functions(self):
        funcs = [
            PiecewiseLinearFunction.from_points([(0, 10 + i), (100, 40 - i)])
            for i in range(5)
        ]
        result = minimum_of(funcs)
        grid = np.linspace(0, 100, 300)
        expected = np.min([f.evaluate(grid) for f in funcs], axis=0)
        assert np.allclose(result.evaluate(grid), expected, atol=1e-9)

    def test_accepts_generators(self):
        result = minimum_of(
            PiecewiseLinearFunction.constant(float(c)) for c in (7.0, 3.0, 9.0)
        )
        assert result.evaluate(0.0) == 3.0
