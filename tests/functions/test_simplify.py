"""Unit tests for breakpoint simplification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import PiecewiseLinearFunction, count_points, remove_collinear, simplify


class TestRemoveCollinear:
    def test_drops_points_on_a_straight_line(self):
        func = PiecewiseLinearFunction.from_points(
            [(0, 0), (10, 10), (20, 20), (30, 30)]
        )
        reduced = remove_collinear(func)
        assert reduced.size == 2
        grid = np.linspace(0, 30, 100)
        assert np.allclose(reduced.evaluate(grid), func.evaluate(grid))

    def test_keeps_genuine_kinks(self):
        func = PiecewiseLinearFunction.from_points([(0, 0), (10, 10), (20, 5)])
        assert remove_collinear(func).size == 3

    def test_consecutive_collinear_points(self):
        func = PiecewiseLinearFunction.from_points(
            [(0, 0), (5, 5), (10, 10), (15, 15), (20, 40)]
        )
        reduced = remove_collinear(func)
        assert reduced.size == 3
        grid = np.linspace(0, 20, 200)
        assert np.allclose(reduced.evaluate(grid), func.evaluate(grid))

    def test_tolerance_permits_small_wobble(self):
        func = PiecewiseLinearFunction.from_points([(0, 0), (10, 10.05), (20, 20)])
        assert remove_collinear(func, tolerance=0.1).size == 2
        assert remove_collinear(func, tolerance=0.001).size == 3

    def test_short_functions_untouched(self):
        func = PiecewiseLinearFunction.from_points([(0, 1), (10, 2)])
        assert remove_collinear(func) is func


class TestSimplify:
    def test_no_cap_only_removes_collinear(self):
        func = PiecewiseLinearFunction.from_points(
            [(0, 0), (10, 10), (20, 20), (30, 10)]
        )
        reduced = simplify(func)
        assert reduced.size == 3

    def test_cap_is_respected(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 86_400, 40)
        costs = rng.uniform(100, 200, size=40)
        func = PiecewiseLinearFunction(times, costs)
        reduced = simplify(func, max_points=10)
        assert reduced.size <= 10

    def test_cap_keeps_endpoints(self):
        times = np.linspace(0, 1000, 30)
        costs = np.abs(np.sin(times / 100.0)) * 100 + 50
        func = PiecewiseLinearFunction(times, costs)
        reduced = simplify(func, max_points=5)
        assert reduced.times[0] == func.times[0]
        assert reduced.times[-1] == func.times[-1]

    def test_under_cap_returns_same_object(self):
        func = PiecewiseLinearFunction.from_points([(0, 1), (10, 2), (20, 1)])
        assert simplify(func, max_points=10) is func

    def test_error_stays_moderate_for_smooth_functions(self):
        times = np.linspace(0, 86_400, 60)
        costs = 300 + 100 * np.sin(times / 86_400 * 2 * np.pi)
        func = PiecewiseLinearFunction(times, costs)
        reduced = simplify(func, max_points=12)
        assert reduced.size <= 12
        # A 12-point approximation of a smooth sinusoid should stay within a
        # few percent of the original.
        assert func.max_difference(reduced, samples=500) < 0.05 * func.max_cost

    def test_degenerate_cap_collapses_to_constant(self):
        func = PiecewiseLinearFunction.from_points([(0, 10), (50, 30), (100, 10)])
        reduced = simplify(func, max_points=1)
        assert reduced.size == 1
        assert reduced.costs[0] >= 0.0

    def test_costs_never_become_negative(self):
        func = PiecewiseLinearFunction.from_points(
            [(0, 0.0), (10, 5.0), (20, 0.0), (30, 5.0), (40, 0.0)]
        )
        reduced = simplify(func, max_points=3)
        assert reduced.is_nonnegative()


class TestCountPoints:
    def test_counts_across_iterable(self):
        funcs = [
            PiecewiseLinearFunction.constant(1.0),
            PiecewiseLinearFunction.from_points([(0, 1), (10, 2), (20, 3)]),
        ]
        assert count_points(funcs) == 4

    def test_empty_iterable(self):
        assert count_points([]) == 0
