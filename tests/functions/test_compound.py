"""Unit tests for the ``Compound`` operator (Definition 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import NO_VIA, PiecewiseLinearFunction, compound


def brute_force_compound(first, second, grid):
    """Reference: h(t) = first(t) + second(t + first(t)) evaluated pointwise."""
    f_vals = np.asarray(first.evaluate(grid))
    return f_vals + np.asarray(second.evaluate(grid + f_vals))


class TestCompoundBasics:
    def test_constant_then_constant(self):
        result = compound(
            PiecewiseLinearFunction.constant(10.0), PiecewiseLinearFunction.constant(5.0)
        )
        assert result.is_constant()
        assert result.evaluate(0.0) == 15.0

    def test_zero_is_left_identity(self):
        second = PiecewiseLinearFunction.from_points([(0, 10), (50, 30), (100, 10)])
        result = compound(PiecewiseLinearFunction.zero(), second)
        grid = np.linspace(-10, 150, 70)
        assert np.allclose(result.evaluate(grid), second.evaluate(grid))

    def test_zero_is_right_identity(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (50, 30), (100, 10)])
        result = compound(first, PiecewiseLinearFunction.zero())
        grid = np.linspace(-10, 150, 70)
        assert np.allclose(result.evaluate(grid), first.evaluate(grid))

    def test_paper_example_path_1_4_9(self):
        """Fig. 1b / Fig. 2: compound of w_{1,4} and w_{4,9} at t=0 costs 10."""
        w_1_4 = PiecewiseLinearFunction.from_points([(0, 5), (30, 15), (60, 25)])
        w_4_9 = PiecewiseLinearFunction.from_points([(0, 5), (60, 15)])
        result = compound(w_1_4, w_4_9)
        # Departing at 0: travel 5 on (1,4), arrive at 5, then w_4_9(5)=5/6*... ≈ 5.83.
        expected = 5 + w_4_9.evaluate(5.0)
        assert result.evaluate(0.0) == pytest.approx(expected)

    def test_paper_example_path_1_2_9(self):
        w_1_2 = PiecewiseLinearFunction.from_points([(0, 10), (20, 10), (60, 15)])
        w_2_9 = PiecewiseLinearFunction.from_points([(0, 5), (30, 10), (60, 15)])
        result = compound(w_1_2, w_2_9)
        expected = 10 + w_2_9.evaluate(10.0)
        assert result.evaluate(0.0) == pytest.approx(expected)

    def test_constant_first_shifts_second(self):
        first = PiecewiseLinearFunction.constant(10.0)
        second = PiecewiseLinearFunction.from_points([(0, 5), (100, 50)])
        result = compound(first, second)
        for t in (-20.0, 0.0, 45.0, 120.0):
            assert result.evaluate(t) == pytest.approx(10.0 + second.evaluate(t + 10.0))


class TestCompoundExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_on_dense_grid(self, seed):
        rng = np.random.default_rng(seed)
        times_a = np.sort(rng.uniform(0, 86_400, size=5))
        times_a[0] = 0.0
        costs_a = rng.uniform(60, 600, size=5)
        # Enforce FIFO so the analytic breakpoints are exact.
        for i in range(1, 5):
            costs_a[i] = max(costs_a[i], costs_a[i - 1] - (times_a[i] - times_a[i - 1]) + 1)
        times_b = np.sort(rng.uniform(0, 86_400, size=4))
        costs_b = rng.uniform(60, 600, size=4)
        for i in range(1, 4):
            costs_b[i] = max(costs_b[i], costs_b[i - 1] - (times_b[i] - times_b[i - 1]) + 1)
        first = PiecewiseLinearFunction(times_a, costs_a)
        second = PiecewiseLinearFunction(times_b, costs_b)

        result = compound(first, second)
        grid = np.linspace(-1000, 90_000, 2_000)
        assert np.allclose(result.evaluate(grid), brute_force_compound(first, second, grid), atol=1e-6)

    def test_result_breakpoints_include_preimages(self):
        first = PiecewiseLinearFunction.from_points([(0, 100), (1000, 100)])
        second = PiecewiseLinearFunction.from_points([(0, 10), (500, 200), (1000, 10)])
        result = compound(first, second)
        # The kink of `second` at t=500 must appear as a kink of the result at
        # departure time 400 (arrival 400 + 100 = 500).
        assert np.any(np.isclose(result.times, 400.0))

    def test_fifo_preserved_under_compound(self):
        first = PiecewiseLinearFunction.from_points([(0, 100), (3600, 400), (7200, 150)])
        second = PiecewiseLinearFunction.from_points([(0, 200), (3600, 700), (7200, 250)])
        assert first.is_fifo() and second.is_fifo()
        assert compound(first, second).is_fifo()

    def test_costs_remain_nonnegative(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 20)])
        second = PiecewiseLinearFunction.from_points([(0, 0), (100, 5)])
        assert compound(first, second).is_nonnegative()


class TestCompoundVia:
    def test_via_is_recorded_on_every_segment(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 20)])
        second = PiecewiseLinearFunction.from_points([(0, 5), (100, 15)])
        result = compound(first, second, via=42)
        assert set(result.via.tolist()) == {42}
        assert result.has_via

    def test_default_via_is_no_via(self):
        first = PiecewiseLinearFunction.from_points([(0, 10), (100, 20)])
        second = PiecewiseLinearFunction.from_points([(0, 5), (100, 15)])
        result = compound(first, second)
        assert set(result.via.tolist()) == {NO_VIA}

    def test_via_recorded_with_constant_operands(self):
        result = compound(
            PiecewiseLinearFunction.constant(1.0),
            PiecewiseLinearFunction.from_points([(0, 5), (10, 6)]),
            via=3,
        )
        assert set(result.via.tolist()) == {3}
        result = compound(
            PiecewiseLinearFunction.from_points([(0, 5), (10, 6)]),
            PiecewiseLinearFunction.constant(1.0),
            via=4,
        )
        assert set(result.via.tolist()) == {4}


class TestCompoundAssociativityLikeBehaviour:
    def test_chaining_three_legs_matches_pointwise(self):
        rng = np.random.default_rng(9)
        legs = []
        for _ in range(3):
            times = np.array([0.0, 30_000.0, 60_000.0, 86_400.0])
            costs = rng.uniform(100, 900, size=4)
            for i in range(1, 4):
                costs[i] = max(costs[i], costs[i - 1] - (times[i] - times[i - 1]) + 1)
            legs.append(PiecewiseLinearFunction(times, costs))
        left = compound(compound(legs[0], legs[1]), legs[2])
        right = compound(legs[0], compound(legs[1], legs[2]))
        grid = np.linspace(0, 86_400, 1_500)
        assert np.allclose(left.evaluate(grid), right.evaluate(grid), atol=1e-6)
