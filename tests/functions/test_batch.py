"""Property-based equivalence tests for the batched PLF kernels.

The batch kernels (:mod:`repro.functions.batch`) promise to be drop-in
equivalents of the scalar operators — not just close, but *identical*:
same breakpoints, same costs (bit for bit), same ``via`` provenance.  These
tests pin that contract down on randomized FIFO functions, mixed-size
batches (including constants) and the clamped-extrapolation edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidFunctionError
from repro.functions import (
    NO_VIA,
    PLFBatch,
    PiecewiseLinearFunction,
    compound,
    compound_many,
    evaluate_grid,
    evaluate_many,
    minimum,
    minimum_many,
    minimum_many_masked,
    simplify,
    simplify_many,
)

_HORIZON = 86_400.0


@st.composite
def fifo_functions(draw, max_points: int = 7):
    """Random FIFO-compliant travel-cost functions over one day."""
    size = draw(st.integers(min_value=1, max_value=max_points))
    raw_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=_HORIZON, allow_nan=False),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    times = np.sort(np.asarray(raw_times, dtype=np.float64))
    for i in range(1, len(times)):
        if times[i] - times[i - 1] < 1.0:
            times[i] = times[i - 1] + 1.0
    costs = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=5_000.0, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        ),
        dtype=np.float64,
    )
    for i in range(1, len(costs)):
        lower = costs[i - 1] - (times[i] - times[i - 1]) + 0.001
        if costs[i] < lower:
            costs[i] = lower
    via = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=NO_VIA, max_value=50),
                min_size=size,
                max_size=size,
            ),
        )
    )
    return PiecewiseLinearFunction(times, costs, via)


function_batches = st.lists(fifo_functions(), min_size=1, max_size=8)


def assert_identical(
    expected: PiecewiseLinearFunction, actual: PiecewiseLinearFunction
) -> None:
    """Bitwise equality of two functions, including the via provenance."""
    assert np.array_equal(expected.times, actual.times)
    assert np.array_equal(expected.costs, actual.costs)
    assert np.array_equal(expected.via, actual.via)


# ----------------------------------------------------------------------
# PLFBatch representation
# ----------------------------------------------------------------------
@given(functions=function_batches)
@settings(max_examples=30, deadline=None)
def test_batch_round_trip(functions):
    batch = PLFBatch.from_functions(functions)
    assert batch.count == len(functions)
    assert batch.total_points == sum(f.size for f in functions)
    for original, restored in zip(functions, batch.to_functions()):
        assert_identical(original, restored)


@given(functions=function_batches)
@settings(max_examples=30, deadline=None)
def test_batch_take_and_stitch(functions):
    batch = PLFBatch.from_functions(functions)
    rows = np.arange(batch.count)[::-1]
    reversed_batch = batch.take(rows)
    for i, row in enumerate(rows):
        assert_identical(functions[int(row)], reversed_batch.function(i))
    stitched = PLFBatch.stitch([(rows, reversed_batch)], batch.count)
    for i, original in enumerate(functions):
        assert_identical(original, stitched.function(i))


def test_batch_validate_rejects_bad_offsets():
    with pytest.raises(InvalidFunctionError):
        PLFBatch(
            np.array([0.0, 1.0]),
            np.array([1.0, 2.0]),
            np.array([NO_VIA, NO_VIA]),
            np.array([0, 1]),  # does not end at len(times)
            validate=True,
        )


# ----------------------------------------------------------------------
# evaluate_many / evaluate_grid
# ----------------------------------------------------------------------
@given(
    functions=function_batches,
    offsets=st.lists(
        st.floats(min_value=-10_000.0, max_value=100_000.0, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_evaluate_many_matches_scalar(functions, offsets):
    batch = PLFBatch.from_functions(functions)
    rng = np.random.default_rng(len(functions))
    # Per-member times, including clamped extrapolation far outside the range.
    times = rng.uniform(-50_000.0, 150_000.0, batch.count)
    got = evaluate_many(batch, times)
    expected = np.array([f.evaluate(float(t)) for f, t in zip(functions, times)])
    assert np.array_equal(got, expected)
    # Matrix form: each member at several of its own times.
    matrix = rng.uniform(-10_000.0, 100_000.0, (batch.count, len(offsets)))
    got = evaluate_many(batch, matrix)
    expected = np.array(
        [[f.evaluate(float(t)) for t in row] for f, row in zip(functions, matrix)]
    )
    assert np.array_equal(got, expected)
    # Shared grid, including the members' own breakpoints (exact hits).
    grid = np.sort(np.asarray(offsets, dtype=np.float64))
    got = evaluate_grid(batch, grid)
    expected = np.array([np.asarray(f.evaluate(grid)) for f in functions])
    assert np.array_equal(got, expected)


@given(functions=function_batches)
@settings(max_examples=30, deadline=None)
def test_evaluate_many_exact_breakpoint_hits(functions):
    batch = PLFBatch.from_functions(functions)
    probes = np.array([f.times[f.size // 2] for f in functions])
    got = evaluate_many(batch, probes)
    expected = np.array([f.evaluate(float(t)) for f, t in zip(functions, probes)])
    assert np.array_equal(got, expected)


def test_evaluate_single_point_functions():
    functions = [PiecewiseLinearFunction.constant(c) for c in (1.0, 7.5, 0.0)]
    batch = PLFBatch.from_functions(functions)
    got = evaluate_many(batch, np.array([-1e9, 0.0, 1e9]))
    assert np.array_equal(got, np.array([1.0, 7.5, 0.0]))


def test_evaluate_tight_spacing_uses_exact_fallback():
    """Sub-resolution breakpoint gaps must disable the banded searchsorted."""
    func = PiecewiseLinearFunction(
        np.array([0.0, 1e-10, 2e-10, _HORIZON]), np.array([5.0, 6.0, 5.0, 7.0])
    )
    batch = PLFBatch.from_functions([func] * 3)
    assert batch._eval_tables()[3] is None  # banded keys refused
    probes = np.array([0.5e-10, 1.5e-10, 10.0])
    expected = np.array([func.evaluate(float(t)) for t in probes])
    assert np.array_equal(evaluate_many(batch, probes), expected)


# ----------------------------------------------------------------------
# compound_many / minimum_many
# ----------------------------------------------------------------------
@given(
    firsts=function_batches,
    seconds=function_batches,
    with_via=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_compound_many_matches_scalar(firsts, seconds, with_via):
    n = min(len(firsts), len(seconds))
    firsts, seconds = firsts[:n], seconds[:n]
    first_batch = PLFBatch.from_functions(firsts)
    second_batch = PLFBatch.from_functions(seconds)
    via = np.arange(n, dtype=np.int64) if with_via else None
    result = compound_many(first_batch, second_batch, via=via)
    assert result.count == n
    for i in range(n):
        expected = compound(
            firsts[i], seconds[i], via=int(via[i]) if via is not None else None
        )
        assert_identical(expected, result.function(i))


@given(firsts=function_batches, seconds=function_batches)
@settings(max_examples=60, deadline=None)
def test_minimum_many_matches_scalar(firsts, seconds):
    n = min(len(firsts), len(seconds))
    firsts, seconds = firsts[:n], seconds[:n]
    result = minimum_many(
        PLFBatch.from_functions(firsts), PLFBatch.from_functions(seconds)
    )
    assert result.count == n
    for i in range(n):
        assert_identical(minimum(firsts[i], seconds[i]), result.function(i))


def test_pairwise_kernels_reject_mismatched_batches():
    a = PLFBatch.from_functions([PiecewiseLinearFunction.constant(1.0)])
    b = PLFBatch.from_functions([PiecewiseLinearFunction.constant(1.0)] * 2)
    with pytest.raises(InvalidFunctionError):
        compound_many(a, b)
    with pytest.raises(InvalidFunctionError):
        minimum_many(a, b)


# ----------------------------------------------------------------------
# minimum_many_masked
# ----------------------------------------------------------------------
@given(seconds=function_batches, data=st.data())
@settings(max_examples=30, deadline=None)
def test_minimum_many_masked_matches_scalar(seconds, data):
    present = np.array(
        data.draw(
            st.lists(
                st.booleans(), min_size=len(seconds), max_size=len(seconds)
            )
        ),
        dtype=bool,
    )
    firsts = [
        data.draw(fifo_functions()) for _ in range(int(present.sum()))
    ]
    result = minimum_many_masked(
        PLFBatch.from_functions(firsts),
        PLFBatch.from_functions(seconds),
        present,
    )
    assert result.count == len(seconds)
    rank = 0
    for i, second in enumerate(seconds):
        if present[i]:
            assert_identical(minimum(firsts[rank], second), result.function(i))
            rank += 1
        else:
            # No existing edge: the candidate passes through untouched.
            assert_identical(second, result.function(i))


def test_minimum_many_masked_all_and_none_present():
    funcs = [
        PiecewiseLinearFunction.constant(10.0),
        PiecewiseLinearFunction.from_points([(0.0, 5.0), (43_200.0, 80.0)]),
    ]
    batch = PLFBatch.from_functions(funcs)
    none = minimum_many_masked(
        PLFBatch.from_functions([]), batch, np.zeros(2, dtype=bool)
    )
    for i, func in enumerate(funcs):
        assert_identical(func, none.function(i))
    cheap = PLFBatch.from_functions([PiecewiseLinearFunction.constant(1.0)] * 2)
    everything = minimum_many_masked(cheap, batch, np.ones(2, dtype=bool))
    for i in range(2):
        assert_identical(
            minimum(cheap.function(i), funcs[i]), everything.function(i)
        )


def test_minimum_many_masked_rejects_inconsistent_mask():
    one = PLFBatch.from_functions([PiecewiseLinearFunction.constant(1.0)])
    two = PLFBatch.from_functions([PiecewiseLinearFunction.constant(1.0)] * 2)
    with pytest.raises(InvalidFunctionError):
        minimum_many_masked(one, two, np.zeros(2, dtype=bool))  # count mismatch
    with pytest.raises(InvalidFunctionError):
        minimum_many_masked(one, two, np.ones(3, dtype=bool))  # wrong length


def test_compound_many_constant_fast_paths():
    constant = PiecewiseLinearFunction.constant(120.0, via=3)
    varying = PiecewiseLinearFunction.from_points([(0.0, 60.0), (43_200.0, 600.0)])
    firsts = [constant, varying, constant]
    seconds = [varying, constant, constant]
    result = compound_many(
        PLFBatch.from_functions(firsts), PLFBatch.from_functions(seconds), via=7
    )
    for i in range(3):
        assert_identical(compound(firsts[i], seconds[i], via=7), result.function(i))


# ----------------------------------------------------------------------
# simplify_many
# ----------------------------------------------------------------------
@given(
    functions=st.lists(fifo_functions(max_points=10), min_size=1, max_size=6),
    cap=st.one_of(st.none(), st.integers(min_value=2, max_value=6)),
    tolerance=st.sampled_from([0.0, 1e-6, 5.0]),
)
@settings(max_examples=40, deadline=None)
def test_simplify_many_matches_scalar(functions, cap, tolerance):
    batch = PLFBatch.from_functions(functions)
    result = simplify_many(batch, max_points=cap, tolerance=tolerance)
    assert result.count == len(functions)
    for i, func in enumerate(functions):
        expected = simplify(func, max_points=cap, tolerance=tolerance)
        assert_identical(expected, result.function(i))


def test_simplify_many_collinear_screen():
    """A member with collinear interior points is reduced; others untouched."""
    collinear = PiecewiseLinearFunction(
        np.array([0.0, 10.0, 20.0]), np.array([5.0, 10.0, 15.0])
    )
    bend = PiecewiseLinearFunction(
        np.array([0.0, 10.0, 20.0]), np.array([5.0, 50.0, 15.0])
    )
    result = simplify_many(PLFBatch.from_functions([collinear, bend]))
    assert result.function(0).size == 2
    assert result.function(1).size == 3


def test_simplify_many_collinear_runs_match_scalar_cascade():
    """Back-to-back collinear candidates resolve exactly like the scalar scan."""
    times = np.arange(0.0, 120.0, 10.0)
    straight = PiecewiseLinearFunction(times, 5.0 + 0.5 * times)  # one long run
    costs = 5.0 + 0.5 * times
    costs[7] += 40.0  # a bend splitting two runs
    split = PiecewiseLinearFunction(times, costs)
    for cap in (None, 6, 4):
        result = simplify_many(
            PLFBatch.from_functions([straight, split]), max_points=cap
        )
        for i, func in enumerate([straight, split]):
            assert_identical(simplify(func, max_points=cap), result.function(i))


# ----------------------------------------------------------------------
# Plain-array export / import (snapshot layout)
# ----------------------------------------------------------------------
@given(functions=st.lists(fifo_functions(), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_to_arrays_from_arrays_roundtrip(functions):
    batch = PLFBatch.from_functions(functions)
    arrays = batch.to_arrays("label_")
    assert set(arrays) == {"label_times", "label_costs", "label_via", "label_offsets"}
    rebuilt = PLFBatch.from_arrays(arrays, "label_")
    assert rebuilt.count == batch.count
    assert np.array_equal(rebuilt.times, batch.times)
    assert np.array_equal(rebuilt.costs, batch.costs)
    assert np.array_equal(rebuilt.via, batch.via)
    assert np.array_equal(rebuilt.offsets, batch.offsets)
    for i, func in enumerate(functions):
        assert_identical(func, rebuilt.function(i))


def test_to_arrays_empty_batch_roundtrip():
    empty = PLFBatch.from_functions([])
    rebuilt = PLFBatch.from_arrays(empty.to_arrays())
    assert rebuilt.count == 0


def test_from_arrays_missing_buffer_raises():
    arrays = PLFBatch.from_functions(
        [PiecewiseLinearFunction.constant(1.0)]
    ).to_arrays("a_")
    del arrays["a_via"]
    with pytest.raises(InvalidFunctionError, match="a_via"):
        PLFBatch.from_arrays(arrays, "a_")


def test_from_arrays_validates_layout():
    arrays = {
        "times": np.array([0.0, 5.0]),
        "costs": np.array([1.0, 2.0]),
        "via": np.array([-1, -1], dtype=np.int64),
        "offsets": np.array([0, 1], dtype=np.int64),  # does not end at len(times)
    }
    with pytest.raises(InvalidFunctionError):
        PLFBatch.from_arrays(arrays)
