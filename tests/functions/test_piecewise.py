"""Unit tests for :class:`repro.functions.PiecewiseLinearFunction`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidFunctionError
from repro.functions import NO_VIA, PiecewiseLinearFunction


@pytest.fixture()
def paper_edge_function() -> PiecewiseLinearFunction:
    """The weight of edge e_{1,2} from the paper's Fig. 1b."""
    return PiecewiseLinearFunction.from_points([(0, 10), (20, 10), (60, 15)])


class TestConstruction:
    def test_from_points_sorts_input(self):
        func = PiecewiseLinearFunction.from_points([(60, 15), (0, 10), (20, 10)])
        assert func.points() == [(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]

    def test_from_points_requires_at_least_one_point(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction.from_points([])

    def test_constant_function(self):
        func = PiecewiseLinearFunction.constant(42.0)
        assert func.size == 1
        assert func.evaluate(0.0) == 42.0
        assert func.evaluate(1e6) == 42.0

    def test_zero_function(self):
        func = PiecewiseLinearFunction.zero()
        assert func.evaluate(12345.0) == 0.0
        assert func.is_constant()

    def test_rejects_duplicate_times(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0.0, 0.0, 10.0], [1.0, 2.0, 3.0])

    def test_rejects_decreasing_times(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([10.0, 0.0], [1.0, 2.0])

    def test_rejects_negative_costs(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0.0, 10.0], [1.0, -2.0])

    def test_rejects_non_finite_values(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0.0, np.inf], [1.0, 2.0])
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0.0, 10.0], [1.0, np.nan])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction([0.0, 10.0], [1.0])

    def test_rejects_multidimensional_arrays(self):
        with pytest.raises(InvalidFunctionError):
            PiecewiseLinearFunction(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_scalar_via_is_broadcast(self):
        func = PiecewiseLinearFunction([0.0, 10.0], [1.0, 2.0], via=7)
        assert list(func.via) == [7, 7]
        assert func.has_via

    def test_default_via_is_no_via(self):
        func = PiecewiseLinearFunction([0.0, 10.0], [1.0, 2.0])
        assert list(func.via) == [NO_VIA, NO_VIA]
        assert not func.has_via

    def test_arrays_are_read_only(self, paper_edge_function):
        with pytest.raises(ValueError):
            paper_edge_function.times[0] = 5.0
        with pytest.raises(ValueError):
            paper_edge_function.costs[0] = 5.0


class TestEvaluation:
    def test_exact_breakpoints(self, paper_edge_function):
        assert paper_edge_function.evaluate(0.0) == 10.0
        assert paper_edge_function.evaluate(20.0) == 10.0
        assert paper_edge_function.evaluate(60.0) == 15.0

    def test_linear_interpolation_between_breakpoints(self, paper_edge_function):
        # Between t=20 (10) and t=60 (15): slope 1/8.
        assert paper_edge_function.evaluate(40.0) == pytest.approx(12.5)

    def test_clamps_before_first_breakpoint(self, paper_edge_function):
        assert paper_edge_function.evaluate(-100.0) == 10.0

    def test_clamps_after_last_breakpoint(self, paper_edge_function):
        assert paper_edge_function.evaluate(1_000.0) == 15.0

    def test_vectorised_evaluation(self, paper_edge_function):
        grid = np.array([0.0, 20.0, 40.0, 60.0, 100.0])
        values = paper_edge_function.evaluate(grid)
        assert np.allclose(values, [10.0, 10.0, 12.5, 15.0, 15.0])

    def test_callable_protocol(self, paper_edge_function):
        assert paper_edge_function(40.0) == paper_edge_function.evaluate(40.0)

    def test_arrival_adds_departure(self, paper_edge_function):
        assert paper_edge_function.arrival(20.0) == 30.0

    def test_arrival_vectorised(self, paper_edge_function):
        grid = np.array([0.0, 20.0])
        assert np.allclose(paper_edge_function.arrival(grid), [10.0, 30.0])

    def test_via_at_returns_segment_provenance(self):
        func = PiecewiseLinearFunction([0.0, 10.0, 20.0], [1.0, 2.0, 3.0], via=[5, 6, 7])
        assert func.via_at(-1.0) == 5
        assert func.via_at(5.0) == 5
        assert func.via_at(15.0) == 6
        assert func.via_at(25.0) == 7


class TestProperties:
    def test_size_and_domain(self, paper_edge_function):
        assert paper_edge_function.size == 3
        assert paper_edge_function.domain == (0.0, 60.0)

    def test_min_and_max_cost(self, paper_edge_function):
        assert paper_edge_function.min_cost == 10.0
        assert paper_edge_function.max_cost == 15.0

    def test_is_constant(self):
        assert PiecewiseLinearFunction.constant(3.0).is_constant()
        assert not PiecewiseLinearFunction.from_points([(0, 1), (10, 5)]).is_constant()
        assert PiecewiseLinearFunction.from_points([(0, 1), (10, 1.5)]).is_constant(
            tolerance=1.0
        )

    def test_fifo_holds_for_paper_edge(self, paper_edge_function):
        assert paper_edge_function.is_fifo()

    def test_fifo_violation_detected(self):
        # Cost drops by 100 over 10 seconds: slope -10 < -1, overtaking possible.
        func = PiecewiseLinearFunction([0.0, 10.0], [200.0, 100.0])
        assert not func.is_fifo()

    def test_fifo_boundary_slope_minus_one(self):
        func = PiecewiseLinearFunction([0.0, 10.0], [20.0, 10.0])
        assert func.is_fifo()

    def test_nonnegative(self, paper_edge_function):
        assert paper_edge_function.is_nonnegative()

    def test_equality_and_hash(self, paper_edge_function):
        clone = PiecewiseLinearFunction.from_points([(0, 10), (20, 10), (60, 15)])
        assert clone == paper_edge_function
        assert hash(clone) == hash(paper_edge_function)
        other = PiecewiseLinearFunction.from_points([(0, 10), (20, 11), (60, 15)])
        assert other != paper_edge_function

    def test_equality_against_other_types(self, paper_edge_function):
        assert paper_edge_function != "not a function"

    def test_repr_mentions_size(self, paper_edge_function):
        assert "size=3" in repr(paper_edge_function)

    def test_len(self, paper_edge_function):
        assert len(paper_edge_function) == 3


class TestTransformations:
    def test_with_via_rewrites_every_segment(self, paper_edge_function):
        rewritten = paper_edge_function.with_via(9)
        assert set(rewritten.via.tolist()) == {9}
        # Original untouched (immutability).
        assert set(paper_edge_function.via.tolist()) == {NO_VIA}

    def test_shift_adds_constant(self, paper_edge_function):
        shifted = paper_edge_function.shift(5.0)
        assert shifted.evaluate(0.0) == 15.0
        assert shifted.evaluate(60.0) == 20.0

    def test_shift_rejects_negative_results(self, paper_edge_function):
        with pytest.raises(InvalidFunctionError):
            paper_edge_function.shift(-100.0)

    def test_restrict_preserves_values_inside_window(self, paper_edge_function):
        restricted = paper_edge_function.restrict(10.0, 50.0)
        for t in (10.0, 25.0, 40.0, 50.0):
            assert restricted.evaluate(t) == pytest.approx(
                paper_edge_function.evaluate(t)
            )
        assert restricted.domain[0] >= 10.0 - 1e-9
        assert restricted.domain[1] <= 50.0 + 1e-9

    def test_restrict_rejects_reversed_window(self, paper_edge_function):
        with pytest.raises(InvalidFunctionError):
            paper_edge_function.restrict(50.0, 10.0)

    def test_restrict_of_constant_is_identity(self):
        func = PiecewiseLinearFunction.constant(5.0)
        assert func.restrict(0.0, 10.0) is func


class TestComparisons:
    def test_allclose_true_for_identical(self, paper_edge_function):
        assert paper_edge_function.allclose(paper_edge_function)

    def test_allclose_detects_differences(self, paper_edge_function):
        other = PiecewiseLinearFunction.from_points([(0, 10), (20, 12), (60, 15)])
        assert not paper_edge_function.allclose(other, tolerance=0.5)

    def test_max_difference_uses_breakpoint_union(self):
        first = PiecewiseLinearFunction.from_points([(0, 0), (100, 100)])
        second = PiecewiseLinearFunction.from_points([(0, 0), (50, 80), (100, 100)])
        assert first.max_difference(second) == pytest.approx(30.0)

    def test_definite_integral_of_constant(self):
        func = PiecewiseLinearFunction.constant(2.0)
        assert func.definite_integral(0.0, 10.0) == pytest.approx(20.0)

    def test_definite_integral_of_ramp(self):
        func = PiecewiseLinearFunction.from_points([(0, 0), (10, 10)])
        assert func.definite_integral(0.0, 10.0) == pytest.approx(50.0)

    def test_definite_integral_rejects_reversed_window(self):
        func = PiecewiseLinearFunction.constant(2.0)
        with pytest.raises(InvalidFunctionError):
            func.definite_integral(10.0, 0.0)
