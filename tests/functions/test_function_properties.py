"""Property-based tests (hypothesis) for the PLF algebra.

These check the algebraic invariants every index algorithm silently relies on:

* ``compound`` equals the pointwise definition ``f(t) + g(t + f(t))`` for FIFO
  inputs (exactness of the analytic breakpoint construction);
* ``minimum`` is the exact lower envelope, commutative and idempotent;
* FIFO and non-negativity are closed under both operators;
* ``simplify`` never exceeds its cap and is the identity in value for the
  lossless configuration.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.functions import (
    PiecewiseLinearFunction,
    compound,
    minimum,
    remove_collinear,
    simplify,
)

_HORIZON = 86_400.0


@st.composite
def fifo_functions(draw, max_points: int = 6):
    """Random FIFO-compliant travel-cost functions over one day."""
    size = draw(st.integers(min_value=1, max_value=max_points))
    raw_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=_HORIZON, allow_nan=False),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    times = np.sort(np.asarray(raw_times, dtype=np.float64))
    # Guarantee a minimum spacing so slopes stay finite and well conditioned.
    for i in range(1, len(times)):
        if times[i] - times[i - 1] < 1.0:
            times[i] = times[i - 1] + 1.0
    costs = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=5_000.0, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        ),
        dtype=np.float64,
    )
    # FIFO repair: slope >= -1.
    for i in range(1, len(costs)):
        lower = costs[i - 1] - (times[i] - times[i - 1]) + 0.001
        if costs[i] < lower:
            costs[i] = lower
    costs = np.maximum(costs, 0.001)
    return PiecewiseLinearFunction(times, costs)


_grid = np.linspace(-5_000.0, _HORIZON + 5_000.0, 700)


@settings(max_examples=60, deadline=None)
@given(first=fifo_functions(), second=fifo_functions())
def test_compound_matches_pointwise_definition(first, second):
    result = compound(first, second)
    f_vals = np.asarray(first.evaluate(_grid))
    expected = f_vals + np.asarray(second.evaluate(_grid + f_vals))
    assert np.allclose(result.evaluate(_grid), expected, atol=1e-6, rtol=1e-9)


@settings(max_examples=60, deadline=None)
@given(first=fifo_functions(), second=fifo_functions())
def test_compound_preserves_fifo_and_nonnegativity(first, second):
    result = compound(first, second)
    assert result.is_nonnegative()
    assert result.is_fifo(tolerance=1e-6)


@settings(max_examples=60, deadline=None)
@given(first=fifo_functions(), second=fifo_functions())
def test_minimum_is_exact_lower_envelope(first, second):
    result = minimum(first, second)
    expected = np.minimum(first.evaluate(_grid), second.evaluate(_grid))
    assert np.allclose(result.evaluate(_grid), expected, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(first=fifo_functions(), second=fifo_functions())
def test_minimum_is_commutative_in_value(first, second):
    left = minimum(first, second)
    right = minimum(second, first)
    assert np.allclose(left.evaluate(_grid), right.evaluate(_grid), atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(func=fifo_functions())
def test_minimum_is_idempotent(func):
    assert minimum(func, func).allclose(func, tolerance=1e-9)


@settings(max_examples=40, deadline=None)
@given(first=fifo_functions(), second=fifo_functions(), third=fifo_functions())
def test_minimum_is_associative_in_value(first, second, third):
    left = minimum(minimum(first, second), third)
    right = minimum(first, minimum(second, third))
    assert np.allclose(left.evaluate(_grid), right.evaluate(_grid), atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(func=fifo_functions(max_points=6))
def test_collinear_removal_is_lossless(func):
    reduced = remove_collinear(func)
    assert reduced.size <= func.size
    assert np.allclose(reduced.evaluate(_grid), func.evaluate(_grid), atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(func=fifo_functions(max_points=6), cap=st.integers(min_value=2, max_value=8))
def test_simplify_respects_cap_and_nonnegativity(func, cap):
    reduced = simplify(func, max_points=cap)
    assert reduced.size <= max(cap, 2)
    assert reduced.is_nonnegative()


@settings(max_examples=60, deadline=None)
@given(func=fifo_functions())
def test_arrival_function_is_nondecreasing(func):
    arrivals = np.asarray(func.arrival(_grid))
    assert np.all(np.diff(arrivals) >= -1e-6)
