"""The legacy surface keeps working — behind warn-once deprecation shims.

``TDTreeIndex.build(strategy=...)`` and ``index.query/profile/batch_query``
each emit exactly one :class:`DeprecationWarning` per process (and nothing
else), and their answers stay bit-identical to the :mod:`repro.api` engines,
so existing code migrates on its own schedule.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import TDTreeIndex, create_engine
from repro.api import TDTreeEngine
from repro.graph import grid_network
from repro.utils.deprecation import reset_deprecation_warnings


@pytest.fixture(autouse=True)
def fresh_deprecation_state():
    """Make warn-once behaviour observable regardless of test order."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


@pytest.fixture(scope="module")
def graph():
    return grid_network(4, 4, num_points=3, seed=9)


def _deprecations(record) -> list[warnings.WarningMessage]:
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


def test_build_warns_exactly_once_and_still_works(graph):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.4)
        TDTreeIndex.build(graph, strategy="basic")
    caught = _deprecations(record)
    assert len(caught) == 1
    assert "create_engine" in str(caught[0].message)
    assert index.strategy == "approx"
    assert {w.category for w in record} <= {DeprecationWarning}


def test_query_profile_batch_warn_once_each(graph):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        index = TDTreeIndex.build(graph, strategy="basic", max_points=None)
        for _ in range(3):
            index.query(0, 15, 0.0)
            index.profile(0, 15)
            index.batch_query([0], [15], [0.0])
    caught = _deprecations(record)
    # build + query + profile + batch_query: one warning each, ever.
    assert len(caught) == 4
    assert {w.category for w in record} <= {DeprecationWarning}


def test_legacy_answers_match_engine_answers(graph):
    engine = create_engine("td-appro?budget_fraction=0.4&max_points=none", graph)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        index = TDTreeIndex.build(
            graph, strategy="approx", budget_fraction=0.4, max_points=None
        )
        legacy_scalar = index.query(0, 15, 30_000.0)
        legacy_profile = index.profile(0, 15)
        legacy_batch = index.batch_query(
            np.array([0, 3]), np.array([15, 12]), np.array([0.0, 30_000.0])
        )
    assert engine.query(0, 15, 30_000.0).cost == legacy_scalar.cost
    assert engine.profile(0, 15).function.allclose(legacy_profile.function)
    matrix = engine.batch_query(
        np.array([0, 3]), np.array([15, 12]), np.array([0.0, 30_000.0])
    )
    assert matrix.costs.tolist() == legacy_batch.costs.tolist()


def test_wrapping_a_legacy_index_in_an_engine_does_not_warn(graph):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        engine = TDTreeEngine(
            TDTreeIndex._build(graph, strategy="basic", max_points=None),
            name="td-basic",
        )
        engine.query(0, 15, 0.0)
        engine.profile(0, 15)
        engine.batch_query([0], [15], [0.0])
    assert _deprecations(record) == []


def test_best_departure_samples_parameter_deprecated(graph):
    engine = create_engine("td-basic?max_points=none", graph)
    function = engine.profile(0, 15).function
    from repro.core.query import ProfileResult

    legacy = ProfileResult(0, 15, function, "basic")
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        exact = legacy.best_departure(0.0, 86_400.0)
        sampled = legacy.best_departure(0.0, 86_400.0, samples=300)
    caught = _deprecations(record)
    assert len(caught) == 1 and "samples" in str(caught[0].message)
    assert exact == sampled  # the parameter no longer changes the answer
    # And the legacy result now agrees exactly with the engine-native type.
    assert engine.profile(0, 15).best_departure(0.0, 86_400.0) == exact
