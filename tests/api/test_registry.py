"""Registry behaviour: spec parsing, option validation, third-party engines."""

from __future__ import annotations

import pytest

from repro.api import (
    BuildConfig,
    Engine,
    EngineCapabilities,
    Route,
    available_engines,
    create_engine,
    engine_entry,
    parse_engine_spec,
    register_engine,
    registered_engines,
    unregister_engine,
)
from repro.exceptions import (
    EngineSpecError,
    UnknownEngineError,
    UnknownEngineOptionError,
)
from repro.graph import grid_network


@pytest.fixture(scope="module")
def graph():
    return grid_network(4, 4, num_points=3, seed=5)


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_engine_spec("td-appro") == ("td-appro", {})

    def test_options_are_coerced(self):
        name, options = parse_engine_spec(
            "td-appro?budget_fraction=0.3&max_points=16&validate=true&tolerance=none&label=x"
        )
        assert name == "td-appro"
        assert options == {
            "budget_fraction": 0.3,
            "max_points": 16,
            "validate": True,
            "tolerance": None,
            "label": "x",
        }
        assert isinstance(options["max_points"], int)

    @pytest.mark.parametrize(
        "bad", ["", "?x=1", "td-appro?budget", "td-appro?=3", "td-appro?a=1&a=2"]
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            parse_engine_spec(bad)

    def test_unknown_engine_lists_available(self, graph):
        with pytest.raises(UnknownEngineError) as excinfo:
            create_engine("td-magic", graph)
        message = str(excinfo.value)
        assert "td-appro" in message
        # Not the KeyError repr: the message must read as plain prose.
        assert not message.startswith('"')

    def test_zero_option_engine_error_says_so(self, graph):
        with pytest.raises(UnknownEngineOptionError) as excinfo:
            create_engine("td-dijkstra?max_points=16", graph)
        assert "takes no options" in str(excinfo.value)

    def test_unknown_option_lists_accepted(self, graph):
        with pytest.raises(UnknownEngineOptionError) as excinfo:
            create_engine("td-appro?budget_fractoin=0.3", graph)
        message = str(excinfo.value)
        assert "budget_fractoin" in message and "budget_fraction" in message

    def test_engine_without_options_rejects_any(self, graph):
        with pytest.raises(UnknownEngineOptionError):
            create_engine("td-dijkstra?max_points=16", graph)


class TestBuildConfig:
    def test_unset_fields_are_absent(self):
        assert BuildConfig().to_options() == {}

    def test_explicit_none_max_points_survives(self):
        options = BuildConfig(max_points=None, budget_fraction=0.2).to_options()
        assert options == {"max_points": None, "budget_fraction": 0.2}

    def test_extras_are_engine_specific_passthrough(self, graph):
        config = BuildConfig(extras={"leaf_size": 6})
        engine = create_engine("tdg-tree", graph, config=config)
        assert engine.query(0, 15, 0.0).cost > 0

    def test_precedence_config_then_spec_then_kwargs(self, graph):
        # config says 0.1, spec says 0.2, kwargs say 0.3: kwargs win.
        config = BuildConfig(budget_fraction=0.1)
        engine = create_engine(
            "td-appro?budget_fraction=0.2", graph, config=config, budget_fraction=0.3
        )
        budget_from = {
            fraction: create_engine(
                "td-appro", graph, budget_fraction=fraction
            ).index.selection.budget
            for fraction in (0.1, 0.2, 0.3)
        }
        assert budget_from[0.1] < budget_from[0.3]  # the probe discriminates
        assert engine.index.selection.budget == budget_from[0.3]


class TestRegistryMetadata:
    def test_nine_builtin_engines_registered(self):
        assert set(available_engines()) >= {
            "td-basic",
            "td-dp",
            "td-appro",
            "td-full",
            "td-h2h",
            "td-dijkstra",
            "td-astar",
            "td-astar-landmarks",
            "tdg-tree",
        }

    def test_paper_names_cover_the_evaluation(self):
        paper_names = {e.paper_name for e in registered_engines() if e.paper_name}
        assert paper_names == {
            "TD-basic",
            "TD-dp",
            "TD-appro",
            "TD-H2H",
            "TD-Dijkstra",
            "TD-A*",
            "TD-G-tree",
        }

    def test_accepted_options_reflect_factory_signature(self):
        accepted = engine_entry("td-appro").accepted_options()
        assert "budget_fraction" in accepted and "max_points" in accepted
        assert engine_entry("td-dijkstra").accepted_options() == ()


class _EchoEngine:
    """Minimal third-party engine used to exercise the extension point."""

    def __init__(self, graph, scale: float) -> None:
        self.name = "test-echo"
        self.graph = graph
        self.scale = scale

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities()

    def query(self, source, target, departure, *, options=None) -> Route:
        return Route(
            engine=self.name,
            source=source,
            target=target,
            departure=departure,
            cost=self.scale,
        )

    def profile(self, source, target):
        raise NotImplementedError

    def batch_query(self, sources, targets, departures, *, options=None):
        raise NotImplementedError

    def update_edges(self, changes):
        raise NotImplementedError

    def memory_breakdown(self):
        from repro.utils.memory import MemoryBreakdown

        return MemoryBreakdown()


class TestThirdPartyRegistration:
    def test_register_create_unregister_roundtrip(self, graph):
        @register_engine("test-echo", description="constant-cost stub")
        def build_echo(g, *, scale: float = 1.0) -> Engine:
            return _EchoEngine(g, scale)

        try:
            assert "test-echo" in available_engines()
            engine = create_engine("test-echo?scale=2.5", graph)
            assert isinstance(engine, Engine)
            assert engine.query(0, 1, 0.0).cost == 2.5
            with pytest.raises(UnknownEngineOptionError):
                create_engine("test-echo?scales=2.5", graph)
        finally:
            unregister_engine("test-echo")
        assert "test-echo" not in available_engines()

    def test_duplicate_registration_refused(self):
        def factory(g):  # pragma: no cover - never built
            raise AssertionError

        register_engine("test-dup", factory)
        try:
            with pytest.raises(EngineSpecError):
                register_engine("test-dup", factory)
            register_engine("test-dup", factory, replace=True)  # explicit override ok
        finally:
            unregister_engine("test-dup")

    def test_invalid_names_refused(self):
        def factory(g):  # pragma: no cover - never built
            raise AssertionError

        with pytest.raises(EngineSpecError):
            register_engine("", factory)
        with pytest.raises(EngineSpecError):
            register_engine("bad?name", factory)

    def test_late_registration_reaches_experiment_method_table(self, graph):
        """METHODS is a live registry view: engines registered after import
        (the entry-point path registers late too) show up immediately, and a
        **options factory receives the runner kwargs instead of losing them."""
        from repro.experiments import METHODS, build_method

        seen: dict[str, object] = {}

        def build_probe(g, **options) -> Engine:  # tolerant factory: takes anything
            seen.update(options)
            return _EchoEngine(g, float(options.get("scale", 1.0)))

        register_engine("test-probe", build_probe, paper_name="TD-probe")
        try:
            assert "TD-probe" in METHODS
            engine = build_method("TD-probe", graph, scale=2.0, budget_fraction=0.4)
            assert engine.query(0, 1, 0.0).cost == 2.0
            # The uniform runner kwargs must reach a **options factory.
            assert seen["scale"] == 2.0 and seen["budget_fraction"] == 0.4
        finally:
            unregister_engine("test-probe")
        assert "TD-probe" not in METHODS
