"""Snapshot of the public API surface.

``repro.api.__all__`` is the library's compatibility contract: additions are
deliberate (update the snapshot here, document them in the README), removals
are breaking.  A drive-by rename failing this test is the point.
"""

from __future__ import annotations

import repro
import repro.api

API_ALL_SNAPSHOT = sorted(
    [
        "Engine",
        "engine_supports",
        "EngineCapabilities",
        "Route",
        "RouteMatrix",
        "RouteProfile",
        "BuildConfig",
        "QueryOptions",
        "UNSET",
        "ENTRY_POINT_GROUP",
        "EngineEntry",
        "register_engine",
        "unregister_engine",
        "create_engine",
        "parse_engine_spec",
        "available_engines",
        "engine_entry",
        "registered_engines",
        "registry_version",
        "EngineAdapter",
        "TDTreeEngine",
        "TDDijkstraEngine",
        "TDAStarEngine",
        "TDGTreeEngine",
    ]
)


def test_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == API_ALL_SNAPSHOT


def test_api_all_names_resolve():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_top_level_package_reexports_engine_surface():
    for name in (
        "api",
        "Engine",
        "create_engine",
        "register_engine",
        "available_engines",
        "Route",
        "RouteMatrix",
        "RouteProfile",
        "BuildConfig",
        "QueryOptions",
    ):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
