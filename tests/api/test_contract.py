"""The shared engine contract suite.

Every engine in the registry — the five td-* configurations and the four
baselines — must behave identically where their capabilities overlap:

* same travel costs for the same (source, target, departure) on small graphs
  (TD-Dijkstra is the exact reference);
* valid vertex paths when ``capabilities().paths`` is advertised (checked
  edge by edge against the graph, and replayed to reproduce the cost);
* capability flags honoured: unadvertised methods raise
  ``UnsupportedCapabilityError`` instead of guessing;
* unknown query options rejected with ``TypeError`` (typos must fail loudly).

Registering a new engine makes this whole suite apply to it by adding one
spec line to ``CONTRACT_SPECS``; ``test_contract_covers_registry`` fails
until that line exists.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.api import Engine, available_engines, create_engine, parse_engine_spec
from repro.exceptions import UnsupportedCapabilityError
from repro.graph import grid_network

#: One spec per registered engine, configured for exact answers (no function
#: caps) so every engine must agree with TD-Dijkstra to float precision.
#: The ``snapshot:`` entry is resolved by :func:`build_contract_engine` — it
#: round-trips the donor below through a saved snapshot, so the whole suite
#: also runs against a rehydrated engine.
CONTRACT_SPECS = (
    "td-basic?max_points=none",
    "td-dp?budget_fraction=0.4&max_points=none",
    "td-appro?budget_fraction=0.4&max_points=none",
    "td-full?max_points=none",
    "td-h2h?max_points=none",
    "td-dijkstra",
    "td-astar",
    "td-astar-landmarks?num_landmarks=4",
    "tdg-tree?max_points=none&leaf_size=6",
    "snapshot:round-trip-of-the-donor",
    # A zero fault plan is behaviourally transparent: the fault-injection
    # wrapper must satisfy the whole contract of its inner engine.
    "faulty:td-appro?budget_fraction=0.4&max_points=none",
)

#: What the contract snapshot engine is a saved copy of (exact, full caps).
SNAPSHOT_DONOR_SPEC = "td-full?max_points=none"


def build_contract_engine(
    spec: str, graph, directory, *, donor_options: dict | None = None
) -> Engine:
    """Resolve one contract spec into an engine.

    ``snapshot:`` has no standalone build path: a donor index is built on
    ``graph``, saved under ``directory`` and rehydrated through the spec, so
    the path placeholder in ``CONTRACT_SPECS`` never touches disk itself.
    """
    name, _ = parse_engine_spec(spec)
    if name != "snapshot":
        return create_engine(spec, graph)
    donor = create_engine(SNAPSHOT_DONOR_SPEC, graph, **(donor_options or {}))
    target = Path(directory) / "contract-snapshot.index"
    donor.index.save(target, engine_spec=SNAPSHOT_DONOR_SPEC)
    return create_engine(f"snapshot:{target}", name="snapshot")

#: (source, target, departure) probes on the 5x5 contract grid.
PROBES = (
    (0, 24, 0.0),
    (0, 24, 30_000.0),
    (3, 20, 61_200.0),
    (12, 12, 3_600.0),
    (24, 0, 80_000.0),
    (7, 18, 43_200.0),
)


@pytest.fixture(scope="module")
def contract_graph():
    return grid_network(5, 5, num_points=3, seed=3)


@pytest.fixture(scope="module")
def engines(contract_graph, tmp_path_factory) -> dict[str, Engine]:
    base = tmp_path_factory.mktemp("contract-snapshots")
    return {
        parse_engine_spec(spec)[0]: build_contract_engine(spec, contract_graph, base)
        for spec in CONTRACT_SPECS
    }


@pytest.fixture(scope="module")
def reference(engines) -> Engine:
    return engines["td-dijkstra"]


def test_contract_covers_registry():
    """Every registered engine must appear in the contract run."""
    covered = {parse_engine_spec(spec)[0] for spec in CONTRACT_SPECS}
    assert covered == set(available_engines())


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_create_engine_builds_protocol_instances(spec, engines):
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    assert isinstance(engine, Engine)
    assert engine.name == name
    assert engine.graph is not None
    assert engine.memory_breakdown() is not None


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_costs_agree_with_exact_reference(spec, engines, reference):
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    for source, target, departure in PROBES:
        expected = reference.query(source, target, departure).cost
        route = engine.query(source, target, departure)
        assert route.cost == pytest.approx(expected, rel=1e-9, abs=1e-9), (
            name,
            source,
            target,
            departure,
        )
        assert route.arrival == pytest.approx(departure + route.cost)
        assert route.engine == name


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_paths_valid_when_advertised(spec, engines, contract_graph):
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    source, target, departure = 0, 24, 30_000.0
    route = engine.query(source, target, departure)
    if not engine.capabilities().paths:
        with pytest.raises(UnsupportedCapabilityError):
            route.path()
        return
    path = route.path()
    assert path[0] == source and path[-1] == target
    # Every hop must be a real directed road segment, and replaying the
    # stored weights along the path must reproduce the reported cost.
    clock = departure
    for u, v in zip(path, path[1:]):
        weight = dict(contract_graph.out_items(u)).get(v)
        assert weight is not None, (name, u, v)
        clock += float(weight.evaluate(clock))
    assert clock - departure == pytest.approx(route.cost, rel=1e-6), name
    assert route.path() is path  # cached, not recomputed


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_profile_capability_honoured(spec, engines, reference):
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    if not engine.capabilities().profile:
        with pytest.raises(UnsupportedCapabilityError):
            engine.profile(0, 24)
        return
    profile = engine.profile(0, 24)
    assert profile.engine == name
    for departure in (0.0, 21_600.0, 61_200.0):
        expected = reference.query(0, 24, departure).cost
        assert profile.cost_at(departure) == pytest.approx(expected, rel=1e-6), name
    best_dep, best_cost = profile.best_departure(0.0, 86_400.0)
    assert 0.0 <= best_dep <= 86_400.0
    assert best_cost == pytest.approx(profile.cost_at(best_dep))
    assert best_cost <= profile.cost_at(30_000.0) + 1e-9


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_batch_capability_honoured(spec, engines):
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    sources = np.array([s for s, _, _ in PROBES], dtype=np.int64)
    targets = np.array([t for _, t, _ in PROBES], dtype=np.int64)
    departures = np.array([d for _, _, d in PROBES], dtype=np.float64)
    if not engine.capabilities().batch:
        with pytest.raises(UnsupportedCapabilityError):
            engine.batch_query(sources, targets, departures)
        return
    matrix = engine.batch_query(sources, targets, departures)
    assert len(matrix) == len(PROBES)
    scalar = [engine.query(s, t, d).cost for s, t, d in PROBES]
    # Bit-identical: the batch engine shares the scalar interpolation kernel.
    assert matrix.costs.tolist() == scalar, name
    assert np.array_equal(matrix.arrivals, departures + matrix.costs)
    # Rows expand to Routes with lazy paths when the engine supports them.
    row = matrix.route(1)
    assert row.cost == scalar[1]
    if engine.capabilities().paths:
        path = matrix.path(1)
        assert path[0] == sources[1] and path[-1] == targets[1]
        assert matrix.path(1) is path  # cached


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_update_capability_honoured(spec, tmp_path):
    name = parse_engine_spec(spec)[0]
    # Updates mutate the engine's graph: build a private one per engine.
    graph = grid_network(4, 4, num_points=3, seed=11)
    engine = build_contract_engine(spec, graph, tmp_path)
    from repro.functions import PiecewiseLinearFunction

    edges = list(graph.edges())
    u, v, weight = edges[0]
    doubled = PiecewiseLinearFunction(
        weight.times, weight.costs * 2.0, weight.via, validate=False
    )
    changes = {(u, v): doubled}
    if not engine.capabilities().update:
        with pytest.raises(UnsupportedCapabilityError):
            engine.update_edges(changes)
        return
    stale = engine.query(0, 15, 0.0)  # answered against the pre-update network
    engine.update_edges(changes)
    # Reference over the engine's own graph: a snapshot engine updates its
    # embedded copy, not the donor graph it was saved from.
    fresh_reference = create_engine("td-dijkstra", engine.graph)
    for source, target, departure in ((0, 15, 0.0), (u, v, 30_000.0), (3, 12, 3_600.0)):
        expected = fresh_reference.query(source, target, departure).cost
        assert engine.query(source, target, departure).cost == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        ), name
    if engine.capabilities().paths:
        # A pre-update route must refuse lazy reconstruction rather than
        # return a path from the updated network (cost/path coherence).
        from repro.exceptions import StaleRouteError

        with pytest.raises(StaleRouteError):
            stale.path()
        fresh = engine.query(0, 15, 0.0)
        assert fresh.path()[0] == 0  # post-update queries reconstruct fine


@pytest.mark.parametrize("spec", CONTRACT_SPECS)
def test_unknown_query_options_rejected(spec, engines):
    """A typo like ``departure_time=`` must raise, not silently answer."""
    name = parse_engine_spec(spec)[0]
    engine = engines[name]
    with pytest.raises(TypeError):
        engine.query(0, 24, departure_time=3_600.0)
    with pytest.raises(TypeError):
        engine.query(0, 24, 3_600.0, departure_time=7_200.0)


def test_engine_wrappers_do_not_pin_themselves_to_the_index():
    """Dropped wrappers of a long-lived index must become garbage.

    The epoch hook holds only weak references (like the serving layer's
    cache hook) and unregisters itself once its engine died, so wrapping a
    loaded index per worker/request cannot grow the hook list forever.
    """
    import gc

    from repro.api import TDTreeEngine
    from repro.core.index import TDTreeIndex

    graph = grid_network(4, 4, num_points=3, seed=17)
    index = TDTreeIndex._build(graph, strategy="basic", max_points=None)
    baseline_hooks = len(index._invalidation_hooks)
    for _ in range(5):
        TDTreeEngine(index, name="td-basic").query(0, 15, 0.0)
    gc.collect()
    index.notify_invalidation()  # dead hooks unregister themselves here
    assert len(index._invalidation_hooks) == baseline_hooks
    # A live wrapper still sees updates: its epoch advances on invalidation.
    engine = TDTreeEngine(index, name="td-basic")
    index.notify_invalidation()
    assert engine._epoch == 1


def test_disconnected_queries_raise_uniformly(engines, tmp_path):
    """All engines signal unreachable targets with DisconnectedQueryError."""
    from repro.exceptions import DisconnectedQueryError
    from repro.functions import PiecewiseLinearFunction
    from repro.graph import TDGraph

    from repro.exceptions import UnknownEngineOptionError

    graph = TDGraph()
    graph.add_edge(0, 1, PiecewiseLinearFunction.constant(10.0))
    graph.add_edge(2, 1, PiecewiseLinearFunction.constant(10.0))
    for spec in CONTRACT_SPECS:
        if parse_engine_spec(spec)[0] == "snapshot":
            # The donor build must also skip the connectivity validation.
            engine = build_contract_engine(
                spec, graph, tmp_path, donor_options={"validate": False}
            )
        else:
            try:
                # Tree engines refuse disconnected graphs unless told otherwise...
                engine = create_engine(spec, graph, validate=False)
            except UnknownEngineOptionError:
                # ...index-free engines take no validate option at all.
                engine = create_engine(spec, graph)
        with pytest.raises(DisconnectedQueryError):
            engine.query(0, 2, 0.0)
