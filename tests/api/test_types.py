"""Behaviour of the unified result types (Route / RouteMatrix / RouteProfile)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import QueryOptions, Route, RouteMatrix, RouteProfile, create_engine
from repro.exceptions import UnsupportedCapabilityError
from repro.functions import PiecewiseLinearFunction
from repro.graph import grid_network


@pytest.fixture(scope="module")
def graph():
    return grid_network(4, 4, num_points=3, seed=7)


@pytest.fixture(scope="module")
def engine(graph):
    return create_engine("td-appro?budget_fraction=0.4&max_points=none", graph)


class TestRoute:
    def test_lazy_path_computed_once(self, engine):
        calls = []
        route = Route(
            engine="x",
            source=0,
            target=3,
            departure=0.0,
            cost=1.0,
            _path_factory=lambda: calls.append(1) or [0, 1, 3],
        )
        assert route.path() == [0, 1, 3]
        assert route.path() == [0, 1, 3]
        assert len(calls) == 1

    def test_path_without_factory_raises_capability_error(self):
        route = Route(engine="x", source=0, target=3, departure=0.0, cost=1.0)
        with pytest.raises(UnsupportedCapabilityError):
            route.path()

    def test_want_path_records_provenance_eagerly(self, engine):
        eager = engine.query(0, 15, 30_000.0, options=QueryOptions(want_path=True))
        lazy = engine.query(0, 15, 30_000.0)
        assert eager.path() == lazy.path()
        assert eager.cost == lazy.cost

    def test_want_path_scalar_route_is_immune_to_updates(self):
        """An eagerly-recorded path must not change when the index does."""
        private = grid_network(4, 4, num_points=3, seed=23)
        engine = create_engine("td-appro?budget_fraction=0.4", private)
        eager = engine.query(0, 15, 0.0, options=QueryOptions(want_path=True))
        recorded = list(eager.path())
        changes = {
            (u, v): PiecewiseLinearFunction(
                w.times, w.costs * 10.0, w.via, validate=False
            )
            for u, v, w in private.edges()
            if (u, v) in zip(recorded, recorded[1:])
        }
        assert changes  # the update really touches the recorded route
        lazy = engine.query(0, 15, 0.0)  # same query, lazy path
        engine.update_edges(changes)
        assert eager.path() == recorded  # query-time provenance, not re-derived
        from repro.exceptions import StaleRouteError

        with pytest.raises(StaleRouteError):
            lazy.path()

    def test_equality_ignores_the_lazy_path_cache(self, engine):
        first = engine.query(0, 15, 30_000.0)
        second = engine.query(0, 15, 30_000.0)
        assert first == second
        first.path()  # populating one route's cache must not break equality
        assert first == second


class TestRouteMatrix:
    def test_equality_is_value_based_not_elementwise(self, engine):
        sources = np.array([0, 3, 5])
        targets = np.array([15, 12, 10])
        departures = np.array([0.0, 30_000.0, 60_000.0])
        first = engine.batch_query(sources, targets, departures)
        second = engine.batch_query(sources, targets, departures)
        assert first == second  # must be a bool, not an elementwise array
        different = engine.batch_query(sources, targets, departures + 1.0)
        assert first != different
        assert first != "not a matrix"

    def test_rows_roundtrip_to_routes(self, engine):
        sources = np.array([0, 3, 5])
        targets = np.array([15, 12, 10])
        departures = np.array([0.0, 30_000.0, 60_000.0])
        matrix = engine.batch_query(sources, targets, departures)
        for i, route in enumerate(matrix):
            assert isinstance(route, Route)
            assert route.source == sources[i] and route.target == targets[i]
            assert route.cost == matrix.costs[i]
            assert route.path()[0] == sources[i]

    def test_want_path_resolves_batch_paths_eagerly(self):
        """QueryOptions(want_path=True) must survive a later index update."""
        private = grid_network(4, 4, num_points=3, seed=21)
        engine = create_engine("td-appro?budget_fraction=0.4", private)
        sources, targets = np.array([0, 3]), np.array([15, 12])
        departures = np.array([0.0, 30_000.0])
        eager = engine.batch_query(
            sources, targets, departures, options=QueryOptions(want_path=True)
        )
        lazy = engine.batch_query(sources, targets, departures)
        u, v, weight = next(iter(private.edges()))
        engine.update_edges(
            {
                (u, v): PiecewiseLinearFunction(
                    weight.times, weight.costs * 2.0, weight.via, validate=False
                )
            }
        )
        from repro.exceptions import StaleRouteError

        assert eager.path(0)[0] == 0  # recorded at query time: still valid
        with pytest.raises(StaleRouteError):
            lazy.path(0)

    def test_pathless_matrix_raises_capability_error(self):
        matrix = RouteMatrix(
            engine="x",
            sources=np.array([0]),
            targets=np.array([1]),
            departures=np.array([0.0]),
            costs=np.array([1.0]),
        )
        with pytest.raises(UnsupportedCapabilityError):
            matrix.path(0)


class TestRouteProfile:
    def test_best_departure_is_exact_at_breakpoints(self):
        function = PiecewiseLinearFunction.from_points(
            [(0.0, 100.0), (10_000.0, 20.0), (50_000.0, 80.0), (86_400.0, 90.0)]
        )
        profile = RouteProfile(engine="x", source=0, target=1, function=function)
        departure, cost = profile.best_departure(0.0, 86_400.0)
        assert (departure, cost) == (10_000.0, 20.0)  # exactly the breakpoint
        # Window excluding the global minimum: the optimum moves to an edge.
        departure, cost = profile.best_departure(20_000.0, 86_400.0)
        assert departure == 20_000.0
        assert cost == pytest.approx(float(function.evaluate(20_000.0)))

    def test_best_departure_empty_window_rejected(self):
        profile = RouteProfile(
            engine="x", source=0, target=1, function=PiecewiseLinearFunction.constant(5.0)
        )
        with pytest.raises(Exception):
            profile.best_departure(10.0, 0.0)
        assert profile.best_departure(10.0, 10.0) == (10.0, 5.0)

    def test_route_at_wraps_one_departure(self):
        profile = RouteProfile(
            engine="x", source=0, target=1, function=PiecewiseLinearFunction.constant(5.0)
        )
        route = profile.route_at(1_000.0)
        assert (route.cost, route.departure, route.arrival) == (5.0, 1_000.0, 1_005.0)

    def test_route_at_paths_work_on_paths_capable_engines(self, engine):
        """Profile-derived routes must expand paths like directly-queried ones."""
        profile = engine.profile(0, 15)
        route = profile.route_at(30_000.0)
        direct = engine.query(0, 15, 30_000.0)
        assert route.cost == pytest.approx(direct.cost, rel=1e-9)
        assert route.path() == direct.path()
