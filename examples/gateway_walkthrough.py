#!/usr/bin/env python
"""Gateway walkthrough: serve a deployment over HTTP and hammer it.

The network edge the ``repro.gateway`` subsystem adds on top of
``EngineHost``:

1. deploy an engine on a host, wrap it in a :class:`~repro.gateway.GatewayApp`
   (a dependency-free ASGI app), and start the bundled asyncio HTTP/1.1
   server on an ephemeral port — under uvicorn the same app object works
   unchanged,
2. hammer it from an async client: single queries, a batch, a streamed
   profile, and a hot swap — all JSON over keep-alive connections, every
   answer bit-identical to the engine's own ``query``,
3. watch the edge guardrails fire: a burst from one API key trips the
   per-client token bucket (429 + ``Retry-After``), and a ``timeout-ms``
   header propagates as a server-side deadline,
4. read the observability surface: ``/stats`` (host + gateway counters) and
   ``/metrics`` (Prometheus text from the shared ``repro.obs`` registry).

Run it with::

    python examples/gateway_walkthrough.py
"""

from __future__ import annotations

import asyncio

from repro import create_engine
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayConfig,
    serve_in_background,
)
from repro.graph import grid_network
from repro.serving import EngineHost


async def hammer(handle, engine, graph) -> None:
    vertices = sorted(graph.vertices())
    source, target = vertices[0], vertices[-1]

    async with GatewayClient(handle.host, handle.port) as client:
        # 2a. One query; the HTTP answer is bit-identical to the engine's.
        response = await client.request(
            "POST",
            "/v1/query",
            payload={"source": source, "target": target, "departure": 8.5 * 3600},
        )
        cost = response.json()["cost"]
        assert cost == engine.query(source, target, 8.5 * 3600).cost
        print(f"query:   {source} -> {target} at 08:30 costs {cost:.2f}")

        # 2b. A batch: one request, one answer per query, typed inline errors.
        batch = await client.request(
            "POST",
            "/v1/batch",
            payload={
                "queries": [
                    {"source": source, "target": target, "departure": d}
                    for d in (0.0, 21_600.0, 43_200.0)
                ]
            },
        )
        costs = [r["cost"] for r in batch.json()["results"]]
        print(f"batch:   3 departures -> costs {[f'{c:.2f}' for c in costs]}")

        # 2c. A travel-time profile, streamed as NDJSON chunks.
        profile = await client.request(
            "POST",
            "/v1/profile",
            payload={"source": source, "target": target},
        )
        lines = profile.ndjson()
        print(f"profile: {lines[0]['breakpoints']} breakpoints streamed")

        # 2d. A hot swap over HTTP — zero downtime, reported timings.
        swap = await client.request(
            "POST",
            "/v1/deployments/prod/swap",
            payload={"engine": "td-basic"},
        )
        report = swap.json()
        print(
            f"swap:    {report['old_spec']} -> {report['new_spec']} "
            f"in {report['total_seconds'] * 1000:.1f} ms"
        )

        # 3a. Burst past the per-client budget: typed 429s with Retry-After.
        denied = 0
        retry_after_ms = 0.0
        for _ in range(40):
            r = await client.request(
                "POST",
                "/v1/query",
                payload={"source": source, "target": target, "departure": 0.0},
                headers={"x-api-key": "impatient-user"},
            )
            if r.status == 429:
                denied += 1
                retry_after_ms = r.json()["error"]["retry_after_ms"]
        print(
            f"limiter: {denied}/40 burst requests answered 429 "
            f"(last Retry-After {retry_after_ms:.0f} ms)"
        )

        # 3b. A deadline shorter than the slow deployment's batch window
        #     comes back as a typed 504 — the ``timeout-ms`` header
        #     propagated server-side and expired while the query queued.
        rushed = await client.request(
            "POST",
            "/v1/query",
            payload={
                "source": source,
                "target": target,
                "departure": 0.0,
                "deployment": "slow",
            },
            headers={"timeout-ms": "10"},
        )
        print(
            f"deadline: timeout-ms=10 against the slow deployment -> "
            f"{rushed.status} {rushed.json()['error']['type']}"
        )

        # 4. The observability surface.
        stats = (await client.request("GET", "/stats")).json()
        gateway = stats["gateway"]
        print(
            f"stats:   {gateway['requests_total']} requests, "
            f"{gateway['rate_limited_total']} rate-limited, "
            f"{gateway['shed_total']} shed"
        )
        metrics = await client.request("GET", "/metrics")
        sample = [
            line
            for line in metrics.body.decode().splitlines()
            if line.startswith("repro_gateway_requests_total")
        ]
        print(f"metrics: {len(sample)} gateway request counter series")


def main() -> None:
    # 1. A host with two deployments — "prod", and a "slow" twin whose
    #    200 ms batch window exists purely to demo deadline expiry — fronted
    #    by the gateway; unnamed requests route to "prod".
    graph = grid_network(8, 8, num_points=3, seed=11)
    engine = create_engine("td-h2h", graph)
    host = EngineHost(max_batch_size=64, max_wait_ms=1.0)
    host.deploy("prod", engine)
    host.deploy("slow", engine, max_wait_ms=200.0)
    app = GatewayApp(
        host,
        config=GatewayConfig(
            rate_limit_qps=5.0,
            rate_limit_burst=10,
            default_deployment="prod",
        ),
    )
    try:
        with serve_in_background(app) as handle:
            print(f"serving: {handle.url} (bundled asyncio HTTP/1.1 server)")
            asyncio.run(hammer(handle, engine, graph))
    finally:
        host.close()
    print("done.")


if __name__ == "__main__":
    main()
