#!/usr/bin/env python
"""Commute planner: use profile queries to pick the best departure time.

Scenario (the paper's motivating use case): a commuter travels between a
suburb and the central business district of a city whose roads congest around
08:00 and 17:30.  A single profile query returns the full travel-cost function
``f_{s,d}(t)``; evaluating it is then instantaneous, so the application can
show "leave now vs leave at ..." advice without issuing new shortest-path
queries.

Run it with::

    python examples/commute_planner.py
"""

from __future__ import annotations

from repro import create_engine
from repro.datasets import load_dataset
from repro.functions import sample_profile


def hours(seconds: float) -> str:
    return f"{int(seconds // 3600):02d}:{int(seconds % 3600 // 60):02d}"


def main() -> None:
    # The scaled "CAL" dataset from the catalog: a grid city with rush hours.
    graph = load_dataset("CAL", num_points=5)
    engine = create_engine("td-appro?budget_fraction=0.35", graph)

    home, office = 3, graph.num_vertices - 7
    profile = engine.profile(home, office)
    print(f"commute {home} -> {office} over one day")
    print(f"profile has {profile.function.size} interpolation points\n")

    # Morning window: when should the commuter leave to arrive by 09:30?
    deadline = 9.5 * 3600.0
    grid, costs = sample_profile(profile.function, start=5 * 3600.0, end=9 * 3600.0, samples=49)
    latest_ok = None
    for departure, cost in zip(grid, costs):
        if departure + cost <= deadline:
            latest_ok = (departure, cost)
    print("departure  travel   arrival")
    for departure, cost in list(zip(grid, costs))[::8]:
        print(f"{hours(departure)}      {cost/60:5.1f} min  {hours(departure + cost)}")
    if latest_ok is not None:
        print(
            f"\nlatest departure that still arrives by {hours(deadline)}: "
            f"{hours(latest_ok[0])} ({latest_ok[1] / 60:.1f} min on the road)"
        )

    # Evening window: cheapest moment to drive back between 16:00 and 20:00.
    back = engine.profile(office, home)
    best_departure, best_cost = back.best_departure(16 * 3600.0, 20 * 3600.0)
    worst_cost = max(
        back.cost_at(t) for t in (16 * 3600.0, 17 * 3600.0, 18 * 3600.0, 19 * 3600.0, 20 * 3600.0)
    )
    print(
        f"\nreturn trip: leaving at {hours(best_departure)} costs {best_cost / 60:.1f} min; "
        f"the worst probed evening departure costs {worst_cost / 60:.1f} min "
        f"({(worst_cost / best_cost - 1) * 100:.0f}% more)"
    )


if __name__ == "__main__":
    main()
