#!/usr/bin/env python
"""Quickstart: build a time-dependent engine and answer shortest-path queries.

This walks through the complete public API (``repro.api``) in five steps:

1. generate (or load) a time-dependent road network,
2. validate it,
3. build an engine from a string spec (the paper's TD-appro configuration),
4. run a travel-cost query and unpack the path,
5. run a cost-function (profile) query and find the cheapest departure time.

Every method the paper evaluates — the td-* index configurations and the
index-free baselines — is built the same way (``create_engine("td-dijkstra",
graph)``, ``create_engine("tdg-tree", graph)``, ...) and answers through the
same ``Route`` / ``RouteProfile`` result types.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import create_engine
from repro.graph import grid_network, validate_graph


def main() -> None:
    # 1. A 8x8 Manhattan-style city with daily congestion profiles (c = 3
    #    interpolation points per road segment, morning and evening peaks).
    graph = grid_network(8, 8, num_points=3, seed=42)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} directed edges")

    # 2. Check the assumptions the index relies on (FIFO, strong connectivity).
    report = validate_graph(graph)
    report.raise_if_invalid()
    print("validation: OK (FIFO, strongly connected)")

    # 3. Build the engine.  "td-appro" selects shortcuts with the greedy
    #    0.5-approximation under a budget of 30% of all candidate shortcuts.
    engine = create_engine("td-appro?budget_fraction=0.3", graph)
    stats = engine.statistics()
    print(
        f"index: treewidth={stats.treewidth}, treeheight={stats.treeheight}, "
        f"{stats.num_selected_pairs}/{stats.num_candidate_pairs} shortcut pairs selected, "
        f"{engine.memory_breakdown().total_megabytes:.2f} MB"
    )

    # 4. Travel-cost query: leave the north-west corner at 08:00 towards the
    #    south-east corner.  The exact TD-Dijkstra baseline is just another
    #    engine, so cross-checking is one more create_engine call.
    source, target = 0, graph.num_vertices - 1
    morning = 8 * 3600.0
    route = engine.query(source, target, departure=morning)
    reference = create_engine("td-dijkstra", graph).query(source, target, morning)
    print(
        f"query {source} -> {target} at 08:00: {route.cost / 60:.1f} min "
        f"(plain TD-Dijkstra agrees: {reference.cost / 60:.1f} min)"
    )
    print(f"path: {' -> '.join(map(str, route.path()))}")  # reconstructed lazily

    # 5. Profile query: the whole day at once.  best_departure evaluates the
    #    profile's breakpoints exactly — no sampling grid.
    profile = engine.profile(source, target)
    best_departure, best_cost = profile.best_departure(6 * 3600.0, 12 * 3600.0)
    print(
        f"profile query: cost at 08:00 = {profile.cost_at(morning) / 60:.1f} min; "
        f"best departure between 06:00 and 12:00 is "
        f"{best_departure / 3600:.2f} h with {best_cost / 60:.1f} min"
    )


if __name__ == "__main__":
    main()
