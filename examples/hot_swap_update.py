#!/usr/bin/env python
"""Traffic incident: patch a clone and hot-swap it — never mutate under readers.

The predecessor of this example (``traffic_incident_update.py``) applied
``update_edges`` to the *live* engine.  That is fine for a single-threaded
notebook, but a serving deployment has reader threads inside the index while
the update rewrites labels and shortcuts.  The production pattern is the
control plane's:

1. serve queries from an :class:`~repro.serving.EngineHost` deployment;
2. when the incident lands, apply the incremental update to a **clone**
   (or rebuild/load a fresh engine) while the old engine keeps answering;
3. ``host.swap`` atomically re-points traffic, drains the in-flight
   micro-batches through the old engine, and starts the replacement with a
   fresh result cache — zero downtime, zero stale answers.

Run it with::

    python examples/hot_swap_update.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import PiecewiseLinearFunction, create_engine
from repro.datasets import load_dataset
from repro.exceptions import AdmissionRejectedError
from repro.serving import EngineHost, SupervisionConfig, retry_submit


def slow_down(weight: PiecewiseLinearFunction, factor: float) -> PiecewiseLinearFunction:
    """Scale a travel-cost profile by ``factor`` (the incident's severity)."""
    return PiecewiseLinearFunction(weight.times, weight.costs * factor, weight.via, validate=False)


def main() -> None:
    graph = load_dataset("CAL", num_points=3)
    # Production posture: a bounded admission queue (overflow is shed with a
    # typed error instead of queueing without limit), a default deadline so
    # no caller can block forever, and a background supervisor that restarts
    # the worker if it ever dies or wedges.
    host = EngineHost(
        max_batch_size=128,
        max_wait_ms=2.0,
        max_pending=4096,
        admission_policy="shed",
        default_deadline_ms=2_000.0,
        supervision=SupervisionConfig(),
    )
    host.deploy("prod", "td-appro?budget_fraction=0.35", graph)

    rng = np.random.default_rng(11)
    source, target = 2, graph.num_vertices - 3
    departure = 8.5 * 3600.0
    print(f"before the incident: {host.query('prod', source, target, departure) / 60:.1f} min")

    # The incident: 5 road segments triple their travel cost (both ways).
    edges = [(u, v) for u, v, _ in graph.edges()]
    incident_edges = [edges[int(i)] for i in rng.choice(len(edges), size=5, replace=False)]
    changes = {}
    for u, v in incident_edges:
        changes[(u, v)] = slow_down(graph.weight(u, v), 3.0)
        changes[(v, u)] = slow_down(graph.weight(v, u), 3.0)

    # Keep traffic flowing through the whole swap: a background commuter
    # hammers the deployment and must never see an error.  Any exception is
    # captured and re-raised after join — this script doubles as the CI gate
    # for the zero-downtime property, so a dying thread must fail the run.
    served = 0
    stop = threading.Event()
    commuter_errors: list[BaseException] = []

    def commuter() -> None:
        # host.query already retries across the swap's service handover; the
        # explicit retry_submit wrapper additionally rides out a shed from
        # the bounded admission queue (deterministic jittered backoff).
        nonlocal served
        try:
            while not stop.is_set():
                retry_submit(
                    lambda: host.query("prod", source, target, departure),
                    retry_on=(AdmissionRejectedError,),
                )
                served += 1
        except BaseException as exc:
            commuter_errors.append(exc)

    hammer = threading.Thread(target=commuter)
    hammer.start()

    # Patch a CLONE of the live index, then swap.  The snapshot round trip
    # *is* the clone (bit-identical and 20-40x cheaper than rebuilding), and
    # the incremental update (Section 5.2 / Fig. 10 of the paper) repairs
    # only the affected labels and shortcuts of that clone.  The live engine
    # is never mutated — it keeps answering until the flip.
    update_started = time.perf_counter()
    snapshot_dir = Path(tempfile.mkdtemp(prefix="repro-hot-swap-")) / "prod.index"
    host.snapshot("prod", snapshot_dir)
    clone = create_engine(f"snapshot:{snapshot_dir}")
    clone.update_edges(changes)
    prepare_seconds = time.perf_counter() - update_started

    report = host.swap("prod", clone)
    stop.set()
    hammer.join()
    if commuter_errors:
        raise commuter_errors[0]
    print(
        f"incident on {len(incident_edges)} segments: replacement prepared in "
        f"{prepare_seconds:.2f} s while serving, swapped in "
        f"{report.switch_seconds * 1000:.2f} ms "
        f"({report.drained_queries} in-flight queries drained through the old engine)"
    )
    print(f"the commuter thread was served {served} times and saw zero errors")

    after = host.query("prod", source, target, departure)
    reference = create_engine("td-dijkstra", clone.graph).query(source, target, departure)
    print(
        f"after the incident: {after / 60:.1f} min "
        f"(plain TD-Dijkstra on the updated network: {reference.cost / 60:.1f} min)"
    )

    stats = host.stats("prod")
    print(
        f"deployment stats across the swap: {stats.queries_answered} answered, "
        f"hit rate {stats.cache_hit_rate:.0%}, p95 {stats.p95_latency_ms:.2f} ms, "
        f"{stats.shed} shed, {stats.retries} retries, "
        f"{stats.worker_restarts} worker restarts"
    )
    print(f"deployment health: {host.health('prod').state.value}")
    host.close()


if __name__ == "__main__":
    main()
