#!/usr/bin/env python
"""Traffic incident: update edge weights in place and keep querying.

Scenario: an accident slows a handful of road segments down for the rest of
the day.  Rebuilding the whole index would take seconds; the incremental
update (Section 5.2 / Fig. 10 of the paper) repairs only the affected labels
and shortcuts and is orders of magnitude cheaper for localised changes.

Run it with::

    python examples/traffic_incident_update.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import PiecewiseLinearFunction, create_engine
from repro.datasets import load_dataset


def slow_down(weight: PiecewiseLinearFunction, factor: float) -> PiecewiseLinearFunction:
    """Scale a travel-cost profile by ``factor`` (the incident's severity)."""
    return PiecewiseLinearFunction(weight.times, weight.costs * factor, weight.via, validate=False)


def main() -> None:
    graph = load_dataset("CAL", num_points=3)
    build_started = time.perf_counter()
    engine = create_engine("td-appro?budget_fraction=0.35", graph)
    full_build_seconds = time.perf_counter() - build_started

    rng = np.random.default_rng(11)
    source, target = 2, graph.num_vertices - 3
    departure = 8.5 * 3600.0

    before = engine.query(source, target, departure)
    print(f"before the incident: {before.cost / 60:.1f} min")

    # The incident: pick 5 road segments near the middle of the grid and
    # triple their travel cost for the whole day (both directions).
    edges = [(u, v) for u, v, _ in graph.edges()]
    incident_edges = [edges[int(i)] for i in rng.choice(len(edges), size=5, replace=False)]
    changes = {}
    for u, v in incident_edges:
        changes[(u, v)] = slow_down(graph.weight(u, v), 3.0)
        changes[(v, u)] = slow_down(graph.weight(v, u), 3.0)

    update_started = time.perf_counter()
    report = engine.update_edges(changes)
    update_seconds = time.perf_counter() - update_started
    print(
        f"incident on {len(incident_edges)} segments applied in {update_seconds * 1000:.0f} ms "
        f"(full rebuild would take ~{full_build_seconds:.1f} s; "
        f"{report.num_dirty_vertices} labels and "
        f"{report.num_refreshed_shortcut_pairs} shortcut pairs touched)"
    )

    after = engine.query(source, target, departure)
    reference = create_engine("td-dijkstra", graph).query(source, target, departure)
    print(
        f"after the incident: {after.cost / 60:.1f} min "
        f"(plain TD-Dijkstra on the updated network: {reference.cost / 60:.1f} min)"
    )
    if after.cost >= before.cost:
        print("the detour is slower than the original route, as expected")


if __name__ == "__main__":
    main()
