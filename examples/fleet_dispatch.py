#!/usr/bin/env python
"""Fleet dispatch: many time-dependent queries per second from one depot.

Scenario: a delivery depot dispatches vehicles all day long and needs travel
cost estimates to hundreds of customers at their individual departure times.
This is exactly the workload where an index pays off over plain TD-Dijkstra:
the index answers each query in well under a millisecond, while Dijkstra
re-explores the network every time.

The example builds the TD-appro index and the index-free baseline — both as
``repro.api`` engines behind one interface — runs the same dispatch batch
through both, compares latency and verifies the answers agree.

Run it with::

    python examples/fleet_dispatch.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import create_engine
from repro.datasets import load_dataset


def main() -> None:
    graph = load_dataset("SF", num_points=3)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    build_started = time.perf_counter()
    index = create_engine("td-appro?budget_fraction=0.3", graph)
    build_seconds = time.perf_counter() - build_started
    dijkstra = create_engine("td-dijkstra", graph)
    print(f"index built in {build_seconds:.1f} s "
          f"({index.memory_breakdown().total_megabytes:.2f} MB)")

    # One depot, 200 dispatch requests spread over the working day.
    rng = np.random.default_rng(7)
    depot = int(rng.choice(sorted(graph.vertices())))
    customers = [int(v) for v in rng.choice(sorted(graph.vertices()), size=200)]
    departures = rng.uniform(6 * 3600.0, 20 * 3600.0, size=len(customers))

    def run(engine) -> tuple[list[float], float]:
        started = time.perf_counter()
        costs = [
            engine.query(depot, customer, float(departure)).cost
            for customer, departure in zip(customers, departures)
            if customer != depot
        ]
        return costs, time.perf_counter() - started

    indexed_costs, indexed_seconds = run(index)
    plain_costs, plain_seconds = run(dijkstra)

    worst_gap = max(
        abs(a - b) / max(b, 1e-9) for a, b in zip(indexed_costs, plain_costs)
    )
    print(f"dispatch batch: {len(indexed_costs)} requests")
    print(f"  TD-appro index : {indexed_seconds * 1000 / len(indexed_costs):6.2f} ms / request")
    print(f"  TD-Dijkstra    : {plain_seconds * 1000 / len(plain_costs):6.2f} ms / request")
    print(f"  speed-up       : {plain_seconds / max(indexed_seconds, 1e-9):6.1f}x")
    print(f"  worst relative deviation from Dijkstra: {worst_gap * 100:.2f}%")

    # Amortisation: after how many requests does building the index pay off?
    per_request_gain = plain_seconds / len(plain_costs) - indexed_seconds / len(indexed_costs)
    if per_request_gain > 0:
        breakeven = int(np.ceil(build_seconds / per_request_gain))
        print(f"  index construction amortised after ~{breakeven} requests")


if __name__ == "__main__":
    main()
