#!/usr/bin/env python
"""Serving walkthrough: snapshot an index once, serve traffic with micro-batching.

The production deployment shape the ``repro.persistence`` and ``repro.serving``
subsystems are built for:

1. an offline builder constructs the index via ``create_engine`` and writes
   a versioned snapshot (``.npz`` buffers + JSON manifest),
2. every serving worker calls ``TDTreeIndex.load(path)`` — one to two orders
   of magnitude cheaper than rebuilding — wraps it as an engine, and fronts
   it with a ``QueryService`` (which serves *any* ``repro.api`` engine, even
   the batch-less baselines, via a scalar loop-flush),
3. scalar ``submit()`` calls from request handlers are micro-batched through
   the vectorized engine and answered via futures, with an LRU result cache
   (optionally bucketing departure times) absorbing repeated questions,
4. when traffic conditions change, ``update_edges`` repairs the index in
   place and automatically invalidates the service's result cache.  (For a
   multi-threaded deployment prefer the ``repro.traffic`` control loop in
   ``examples/live_traffic.py`` — stream events in, let the policy patch a
   clone or swap, never mutate under readers.)

Run it with::

    python examples/serving_walkthrough.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import TDTreeIndex, create_engine
from repro.api import TDTreeEngine
from repro.graph import grid_network
from repro.persistence import read_manifest
from repro.serving import QueryService


def main() -> None:
    # 1. Offline: build once, snapshot to disk.
    graph = grid_network(10, 10, num_points=3, seed=101)
    started = time.perf_counter()
    engine = create_engine("td-appro?budget_fraction=0.35", graph)
    build_seconds = time.perf_counter() - started
    snapshot_dir = Path(tempfile.mkdtemp(prefix="repro-snapshot-")) / "cal.index"
    engine.index.save(snapshot_dir)
    manifest = read_manifest(snapshot_dir)
    print(
        f"snapshot: format v{manifest['format_version']}, "
        f"{manifest['counts']['tree_nodes']} tree nodes, "
        f"{manifest['counts']['shortcut_pairs']} shortcut pairs -> {snapshot_dir}"
    )

    # 2. Online worker: load instead of rebuild, then wrap the loaded index
    #    as an engine (snapshots round-trip bit-identically, so the worker's
    #    engine answers exactly like the builder's).
    started = time.perf_counter()
    served = TDTreeEngine(TDTreeIndex.load(snapshot_dir), name="td-appro")
    load_seconds = time.perf_counter() - started
    print(
        f"load: {load_seconds * 1000:.1f} ms vs {build_seconds * 1000:.0f} ms build "
        f"({build_seconds / load_seconds:.0f}x faster)"
    )

    # 3. Serve scalar traffic through the micro-batching service.  Bucketing
    #    departures to 5 minutes trades a bounded answer staleness for cache
    #    hits on "same commute, roughly same time" traffic.
    rng = np.random.default_rng(7)
    vertices = np.asarray(sorted(graph.vertices()))
    workload = [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(7.5 * 3600, 9 * 3600)),
        )
        for _ in range(400)
    ]
    with QueryService(
        served, max_batch_size=128, max_wait_ms=2.0, bucket_seconds=300.0
    ) as service:
        futures = [service.submit(s, t, d) for s, t, d in workload]
        service.flush()
        costs = [f.result(timeout=30) for f in futures]
        print(f"served {len(costs)} queries, mean travel cost {np.mean(costs) / 60:.1f} min")

        # Replay the same commutes a few minutes later: the bucketed cache
        # answers most of them without touching the engine.
        replay = [(s, t, d + 60.0) for s, t, d in workload[:200]]
        for s, t, d in replay:
            service.submit(s, t, d)
        service.flush()
        stats = service.stats()
        print(
            f"stats: {stats.queries_answered} answered, "
            f"hit rate {stats.cache_hit_rate:.0%}, "
            f"batch occupancy {stats.batch_occupancy:.0%}, "
            f"p50 {stats.p50_latency_ms:.2f} ms, p95 {stats.p95_latency_ms:.2f} ms, "
            f"{stats.throughput_qps:,.0f} q/s"
        )

        # 4. Traffic incident: double one road's travel time.  The update
        #    repairs the index in place and fires the service's invalidation
        #    hook, so no stale cached answer survives.
        u, v, weight = next(iter(served.graph.edges()))
        served.update_edges({(u, v): weight.shift(weight.max_cost)})
        after = service.stats()
        print(
            f"incident on edge ({u}, {v}): cache invalidated "
            f"({after.cache_invalidations} invalidation, "
            f"{after.cache_entries} entries left)"
        )
        s, t, d = workload[0]
        print(f"re-served query {s} -> {t}: {service.query(s, t, d) / 60:.1f} min")


if __name__ == "__main__":
    main()
