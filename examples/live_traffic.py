#!/usr/bin/env python
"""Live traffic: stream incidents through the control loop, watch staleness.

The predecessor of this example (``hot_swap_update.py``) performed one
snapshot → patch-the-clone → swap cycle by hand.  ``repro.traffic`` closes
that loop: edge-weight events stream into a :class:`TrafficController`,
each control step coalesces them per edge (latest wins), and an
:class:`AdaptivePolicy` picks the cheapest safe maintenance action from the
estimated dirty cone, the live query rate, and measured per-action costs —

* a small dirty cone → **patch** the live index in place (serialized
  against swaps by the deployment's swap lock);
* a middling cone under live traffic → snapshot, patch the **clone**, swap
  (queries never see a half-updated index);
* a large cone → background **rebuild** from the patched graph, then swap.

Staleness — seconds from the event to a servable answer that reflects it —
is the loop's first-class health metric, published per deployment as the
``repro_traffic_staleness_seconds`` histogram.

Run it with::

    python examples/live_traffic.py
"""

from __future__ import annotations

import threading
import time

from repro import create_engine
from repro.datasets import load_dataset
from repro.exceptions import AdmissionRejectedError
from repro.serving import EngineHost, SupervisionConfig, retry_submit
from repro.traffic import AdaptivePolicy, ScenarioDriver, TrafficController

#: Exact build spec: no lossy simplification, so post-update answers match a
#: fresh rebuild bit for bit (up to float summation order).
SPEC = "td-h2h?max_points=none"


def main() -> None:
    graph = load_dataset("CAL", num_points=3)
    host = EngineHost(
        max_batch_size=128,
        max_wait_ms=2.0,
        max_pending=4096,
        admission_policy="shed",
        default_deadline_ms=2_000.0,
        supervision=SupervisionConfig(),
    )
    host.deploy("prod", SPEC, graph.copy())

    # A commuter keeps querying throughout — the control loop must never
    # block or break the serving path.  Any exception fails the run: this
    # script doubles as the CI gate for that property.
    source, target = 2, graph.num_vertices - 3
    departure = 8.5 * 3600.0
    served = 0
    stop = threading.Event()
    commuter_errors: list[BaseException] = []

    def commuter() -> None:
        nonlocal served
        try:
            while not stop.is_set():
                retry_submit(
                    lambda: host.query("prod", source, target, departure),
                    retry_on=(AdmissionRejectedError,),
                )
                served += 1
        except BaseException as exc:
            commuter_errors.append(exc)

    hammer = threading.Thread(target=commuter)
    hammer.start()

    print(f"before any incident: {host.query('prod', source, target, departure) / 60:.1f} min")

    driver = ScenarioDriver(graph, seed=11)
    shadow = graph.copy()  # tracks every update; the oracle builds from it
    controller = TrafficController(host, "prod", policy=AdaptivePolicy())
    with controller:
        controller.start(interval_seconds=0.05)  # control steps off the query path

        # Morning timeline: a flash incident at one site, then network-wide
        # rush-hour waves that finally clear.  Events stream in per
        # timestamp; the background loop coalesces and applies them.
        timeline = driver.flash_incident(edges=2, delay=900.0, clear_after=5.0)
        timeline += driver.rush_hour(waves=2, edges_per_wave=8, peak_delay=600.0)
        by_time: dict[float, list] = {}
        for event in timeline:
            by_time.setdefault(event.at, []).append(event)
        for at in sorted(by_time):
            for update in driver.updates(by_time[at]):
                controller.ingest(update)
                shadow.set_weight(update.source, update.target, update.weight)
            # Wait for the loop to drain this chunk before the next lands,
            # so the printed action mix maps 1:1 onto timeline steps.
            while controller.pending_edges or controller.stream.pending:
                time.sleep(0.01)

        controller.stop()
        stats = controller.stats()

    stop.set()
    hammer.join()
    if commuter_errors:
        raise commuter_errors[0]

    mix = ", ".join(
        f"{action}×{count}" for action, count in sorted(stats.actions.items()) if count
    )
    print(
        f"{stats.updates_ingested} events over {stats.steps} control steps "
        f"({stats.updates_coalesced} coalesced away): {mix}"
    )
    print(
        f"staleness (event → servable answer): p50 {stats.staleness_p50_s * 1000:.0f} ms, "
        f"p99 {stats.staleness_p99_s * 1000:.0f} ms, max {stats.staleness_max_s * 1000:.0f} ms"
    )
    print(f"the commuter was served {served} times and saw zero errors")

    # The strongest check available: a fresh engine over the shadow graph.
    oracle = create_engine(SPEC, shadow.copy())
    after = host.query("prod", source, target, departure)
    assert after == oracle.query(source, target, departure).cost
    print(f"after the morning: {after / 60:.1f} min (matches a fresh rebuild exactly)")

    host_stats = host.stats("prod")
    print(
        f"deployment stats: {host_stats.queries_answered} answered, "
        f"p95 {host_stats.p95_latency_ms:.2f} ms, {host_stats.shed} shed, "
        f"{host_stats.worker_restarts} worker restarts, "
        f"health {host.health('prod').state.value}"
    )
    host.close()


if __name__ == "__main__":
    main()
