#!/usr/bin/env python
"""Index tuning: explore the memory/latency trade-off of the budget ``N``.

The paper's Fig. 11 shows that a larger shortcut budget buys faster queries at
the cost of more memory.  This example sweeps the budget on one dataset,
compares the exact DP selection (Algorithm 4) with the 0.5-approximation
(Algorithm 5), and prints a small sizing table an operator could use to pick a
configuration for their latency target.

Run it with::

    python examples/index_tuning.py
"""

from __future__ import annotations

import time

from repro import create_engine
from repro.datasets import generate_queries, load_dataset
from repro.experiments import format_table, measure_cost_queries


def main() -> None:
    graph = load_dataset("SF", num_points=3)
    workload = generate_queries(graph, num_pairs=30, num_intervals=4, seed=5, dataset="SF")

    rows = []
    for spec in ("td-appro", "td-dp"):
        for fraction in (0.1, 0.25, 0.5):
            started = time.perf_counter()
            index = create_engine(
                spec, graph, budget_fraction=fraction, max_points=16
            )
            build_seconds = time.perf_counter() - started
            latency = measure_cost_queries(index, workload)
            selection = index.selection
            rows.append(
                {
                    "strategy": "TD-dp" if spec == "td-dp" else "TD-appro",
                    "budget_fraction": fraction,
                    "budget_N_points": selection.budget,
                    "selected_pairs": len(index.shortcuts),
                    "achieved_utility": round(selection.total_utility, 1),
                    "build_s": build_seconds,
                    "memory_mb": index.memory_breakdown().total_megabytes,
                    "query_ms": latency.mean_ms,
                }
            )

    print(format_table(rows, title="Shortcut budget sizing on the scaled SF network"))
    approx = [r for r in rows if r["strategy"] == "TD-appro"]
    exact = [r for r in rows if r["strategy"] == "TD-dp"]
    for a, e in zip(approx, exact):
        if e["achieved_utility"] > 0:
            ratio = a["achieved_utility"] / e["achieved_utility"]
            print(
                f"budget {a['budget_fraction']}: greedy achieves {ratio:.2f}x of the DP utility "
                f"(theory guarantees at least 0.5x)"
            )


if __name__ == "__main__":
    main()
